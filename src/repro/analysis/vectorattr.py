"""Vectorised sample-to-object attribution (the columnar fast path).

:func:`repro.analysis.attribution.attribute_samples` replays the trace
one dataclass event at a time — exact, and kept in-tree as the
correctness oracle, but ~10^5-10^6 events/s of pure Python. This
module reproduces its result bit for bit on a
:class:`~repro.trace.columnar.ColumnarTrace` by exploiting the
structure of the workload:

* **Heap mutations delimit epochs.** Only allocation/free events (and
  the statics, up front) change the live-range table. Between two
  mutations the table is frozen, so every sample of that *epoch* can
  be matched in one ``np.searchsorted`` batch against the sorted
  live-range arrays. The paper's traces are sample-heavy — thousands
  of allocation events under hundreds of thousands of PEBS samples —
  so almost all work lands in a few large batches.
* **Equal-timestamp ties follow the oracle exactly.** Events are
  ordered by a stable lexsort on ``(time, kind-priority)`` with the
  oracle's priorities (allocs visible before same-instant samples,
  frees applied after), so address reuse at a shared timestamp
  attributes identically.
* **Tallies are array reductions.** Per-object miss counts are one
  ``bincount`` over the matched key ids, latency sums one
  ``np.add.at`` (integer-exact), per-site alloc statistics
  (max/total/count) grouped reductions over the allocation columns,
  and stack-region/unresolved classification one vectorised range
  test over the unmatched addresses.

The live table itself is the batch-snapshot twin of
:class:`~repro.runtime.heap.LiveRangeIndex`: flat sorted NumPy arrays
mutated by memmove-style shifts, raising the same overlap/missing-free
errors at the same event, so malformed traces fail identically on
both paths.

The replay is packaged as a *resumable* cursor,
:class:`IncrementalAttributor`: construction performs the global sort
once, and the caller then consumes the stream in windows —
``advance_time(t)`` for wall-clock windows (equal timestamps are never
split), ``advance_events(n)`` for arbitrary partitions of the replay
order — snapshotting an :class:`AttributionResult` after any prefix.
The one-shot :func:`attribute_samples_vector` is literally "construct,
consume everything, snapshot", so windowed and batch attribution share
every line of replay code and cannot drift apart. This is what the
online re-advising daemon (:mod:`repro.online`) feeds its per-window
placement decisions from.
"""

from __future__ import annotations

import base64
import zlib

import numpy as np

from repro.analysis.attribution import AttributionResult, stack_region_of
from repro.errors import AttributionError
from repro.analysis.objects import ObjectKey
from repro.trace.columnar import (
    KIND_ALLOC,
    KIND_FREE,
    KIND_SAMPLE,
    ColumnarTrace,
)
from repro.trace.tracefile import TraceFile

#: Kind code -> tie-break priority (the oracle's ``_PRIORITY`` table:
#: alloc 0, sample 1, free 2, phase 3).
_KIND_PRIORITY = np.array([0, 2, 1, 3], dtype=np.uint8)

#: Bump when the :meth:`IncrementalAttributor.to_state` layout changes.
ATTRIBUTOR_STATE_VERSION = 1


def _encode_array(array: np.ndarray) -> dict:
    """JSON-safe encoding of one NumPy array (dtype + base64 bytes)."""
    array = np.ascontiguousarray(array)
    return {
        "dtype": str(array.dtype),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def _decode_array(encoded: dict) -> np.ndarray:
    try:
        return np.frombuffer(
            base64.b64decode(encoded["data"]), dtype=encoded["dtype"]
        ).copy()
    except (KeyError, TypeError, ValueError) as exc:
        raise AttributionError(
            f"malformed attributor state array: {exc}"
        ) from exc


class _LiveTable:
    """Sorted live-range arrays with in-place shift mutation.

    ``bases``/``ends``/``key_ids`` occupy the prefix of capacity
    arrays; insert/remove shift the tail (NumPy handles the
    overlapping copy), so an epoch's snapshot is just the prefix
    views — no per-epoch export cost at all. Raises the exact errors
    of :class:`~repro.runtime.heap.LiveRangeIndex` so the fast path
    fails on malformed traces at the same event as the oracle.
    """

    def __init__(self, capacity: int = 256) -> None:
        self._bases = np.empty(capacity, dtype=np.int64)
        self._ends = np.empty(capacity, dtype=np.int64)
        self._keys = np.empty(capacity, dtype=np.int64)
        self.n = 0

    def _grow(self) -> None:
        capacity = max(2 * self._bases.size, 16)
        for name in ("_bases", "_ends", "_keys"):
            arr = getattr(self, name)
            grown = np.empty(capacity, dtype=arr.dtype)
            grown[: self.n] = arr[: self.n]
            setattr(self, name, grown)

    def insert(self, base: int, size: int, key_id: int) -> None:
        if size <= 0:
            raise ValueError(f"range size must be positive, got {size}")
        end = base + size
        pos = int(
            np.searchsorted(self._bases[: self.n], base, side="right")
        )
        if (pos > 0 and self._ends[pos - 1] > base) or (
            pos < self.n and self._bases[pos] < end
        ):
            raise ValueError(
                f"range [{base:#x},{end:#x}) overlaps a live range"
            )
        if self.n == self._bases.size:
            self._grow()
        n = self.n
        self._bases[pos + 1 : n + 1] = self._bases[pos:n]
        self._ends[pos + 1 : n + 1] = self._ends[pos:n]
        self._keys[pos + 1 : n + 1] = self._keys[pos:n]
        self._bases[pos] = base
        self._ends[pos] = end
        self._keys[pos] = key_id
        self.n = n + 1

    def remove(self, base: int) -> None:
        pos = int(np.searchsorted(self._bases[: self.n], base, side="left"))
        if pos == self.n or self._bases[pos] != base:
            raise KeyError(f"no live range starts at {base:#x}")
        n = self.n
        self._bases[pos : n - 1] = self._bases[pos + 1 : n]
        self._ends[pos : n - 1] = self._ends[pos + 1 : n]
        self._keys[pos : n - 1] = self._keys[pos + 1 : n]
        self.n = n - 1

    def match(
        self, addresses: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(hit_mask, key_ids_of_hits)`` for a batch of addresses."""
        n = self.n
        if n == 0:
            return (
                np.zeros(addresses.size, dtype=bool),
                np.empty(0, dtype=np.int64),
            )
        idx = (
            np.searchsorted(self._bases[:n], addresses, side="right") - 1
        )
        hit = idx >= 0
        safe = np.where(hit, idx, 0)
        hit &= addresses < self._ends[:n][safe]
        return hit, self._keys[:n][idx[hit]]


class IncrementalAttributor:
    """Resumable windowed attribution over one trace.

    Construction performs the global ``(time, kind-priority)`` lexsort
    once, registers the statics (load-time by definition) and parks a
    cursor at the start of the replay order. ``advance_time(t)`` /
    ``advance_events(n)`` then consume a prefix of the stream,
    maintaining the live-range table and the accumulated tallies;
    :meth:`result` snapshots an :class:`AttributionResult` over
    everything consumed so far.

    The invariant the online daemon and the windowed-equivalence
    property tests rely on: after any sequence of advances consuming
    the whole stream, :meth:`result` equals the one-shot
    :func:`attribute_samples_vector` (and hence the per-event oracle)
    bit for bit — and every intermediate snapshot equals a batch pass
    over the consumed prefix. Window boundaries placed by time never
    split a run of equal timestamps (``advance_time`` consumes
    *strictly* earlier events), so tie-break semantics are preserved
    no matter where the windows fall; ``advance_events`` may split a
    mutation epoch anywhere, and the cursor resumes mid-epoch.
    """

    def __init__(self, trace: "ColumnarTrace | TraceFile") -> None:
        if isinstance(trace, TraceFile):
            trace = ColumnarTrace.from_tracefile(trace)
        self.trace = trace
        self._stack_base, self._stack_size = stack_region_of(trace.metadata)

        # -- object-key table: interned callstack/static -> dense key id ----
        self._keys: list[ObjectKey] = []
        self._key_id_of: dict[ObjectKey, int] = {}

        def key_id(key: ObjectKey) -> int:
            kid = self._key_id_of.get(key)
            if kid is None:
                kid = self._key_id_of[key] = len(self._keys)
                self._keys.append(key)
            return kid

        # Call-stack interning keys on the full stack (modules
        # included); attribution identity drops the module, so distinct
        # interned stacks may share one ObjectKey — remap through the
        # key table.
        cs_key_ids = np.fromiter(
            (key_id(ObjectKey.dynamic(cs)) for cs in trace.callstacks),
            dtype=np.int64,
            count=len(trace.callstacks),
        )
        static_key_ids = [
            key_id(ObjectKey.static(name)) for name in trace.static_names
        ]

        # -- statics: consumed up front (they exist at load time), with
        # the oracle's exact bookkeeping (last same-name static wins
        # the size fields, every record counts an allocation) ----------------
        self._table = _LiveTable()
        self._static_max: dict[ObjectKey, int] = {}
        self._static_total: dict[ObjectKey, int] = {}
        self._static_nallocs: dict[ObjectKey, int] = {}
        for i, kid in enumerate(static_key_ids):
            key = self._keys[kid]
            size = int(trace.static_sizes[i])
            self._table.insert(int(trace.static_addresses[i]), size, kid)
            self._static_max[key] = size
            self._static_total[key] = size
            self._static_nallocs[key] = (
                self._static_nallocs.get(key, 0) + 1
            )

        # -- per-site allocation statistics accumulate as mutations are
        # consumed (vectorised per advance; order-independent) ---------------
        n_keys = len(self._keys)
        self._alloc_counts = np.zeros(n_keys, dtype=np.int64)
        self._alloc_totals = np.zeros(n_keys, dtype=np.int64)
        self._alloc_maxima = np.zeros(n_keys, dtype=np.int64)

        # -- the sorted replay order -----------------------------------------
        order = np.lexsort((_KIND_PRIORITY[trace.kinds], trace.times))
        kinds_s = trace.kinds[order]
        self._times_s = trace.times[order]
        self._n_events = int(order.size)

        self._mut_pos = np.flatnonzero(
            (kinds_s == KIND_ALLOC) | (kinds_s == KIND_FREE)
        )
        self._smp_pos = np.flatnonzero(kinds_s == KIND_SAMPLE)
        self._samp_addr = trace.addresses[order[self._smp_pos]]
        self._samp_lat = trace.latencies[order[self._smp_pos]]
        # Mutations are rare (the workload is sample-heavy): gather
        # their columns individually and hand the loop plain Python
        # lists — cheaper than permuting the full arrays and pulling
        # NumPy scalars.
        mut_orig = order[self._mut_pos]
        self._mut_is_alloc_arr = kinds_s[self._mut_pos] == KIND_ALLOC
        self._mut_is_alloc = self._mut_is_alloc_arr.tolist()
        self._mut_addr = trace.addresses[mut_orig].tolist()
        self._mut_size_arr = trace.sizes[mut_orig]
        self._mut_size = self._mut_size_arr.tolist()
        # aux is -1 at frees (no callstack); clip before the gather —
        # the value is never read on the free branch.
        if cs_key_ids.size:
            self._mut_kid_arr = cs_key_ids[
                np.maximum(trace.aux[mut_orig], 0)
            ]
        else:
            self._mut_kid_arr = np.zeros(mut_orig.size, dtype=np.int64)
        self._mut_kid = self._mut_kid_arr.tolist()
        # Samples strictly before each mutation, in replay order.
        self._boundaries = np.searchsorted(
            self._smp_pos, self._mut_pos
        ).tolist()

        # Hits accumulate as aligned (key id, latency) chunk pairs; the
        # latency filter runs once per snapshot over the concatenation,
        # not per epoch.
        self._matched_chunks: list[np.ndarray] = []
        self._matched_lat_chunks: list[np.ndarray] = []
        self._unmatched_chunks: list[np.ndarray] = []

        self._next_mut = 0  # mutations applied so far
        self._flushed = 0  # samples matched so far
        self._consumed = 0  # sorted events consumed so far

    # -- cursor state ------------------------------------------------------

    @property
    def total_events(self) -> int:
        """Events in the replay order (samples + mutations + phases)."""
        return self._n_events

    @property
    def consumed_events(self) -> int:
        return self._consumed

    @property
    def consumed_samples(self) -> int:
        return self._flushed

    @property
    def exhausted(self) -> bool:
        return self._consumed >= self._n_events

    # -- checkpoint/restore ------------------------------------------------

    def fingerprint(self) -> str:
        """Cheap identity of the replay order this cursor walks.

        Two attributors share a fingerprint exactly when they were
        built over the same event stream, so a serialised cursor can
        refuse to resume against the wrong trace.
        """
        crc = zlib.crc32(self._times_s.tobytes()) & 0xFFFFFFFF
        return (
            f"{self._n_events}:{self._smp_pos.size}:"
            f"{self._mut_pos.size}:{crc:08x}"
        )

    def _chunk(self, chunks: list[np.ndarray], dtype) -> np.ndarray:
        return (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=dtype)
        )

    def to_state(self) -> dict:
        """JSON-serialisable snapshot of the cursor and its tallies.

        Captures everything :meth:`result` and further advances depend
        on that is *not* a pure function of the trace: the cursor
        indices, the live-range table and the accumulated match/alloc
        tallies. The sorted replay order itself is rebuilt from the
        trace on :meth:`from_state` (it is deterministic), so states
        stay small and cannot disagree with the stream they index.
        """
        return {
            "version": ATTRIBUTOR_STATE_VERSION,
            "fingerprint": self.fingerprint(),
            "consumed": self._consumed,
            "next_mut": self._next_mut,
            "flushed": self._flushed,
            "table_bases": _encode_array(self._table._bases[: self._table.n]),
            "table_ends": _encode_array(self._table._ends[: self._table.n]),
            "table_keys": _encode_array(self._table._keys[: self._table.n]),
            "alloc_counts": _encode_array(self._alloc_counts),
            "alloc_totals": _encode_array(self._alloc_totals),
            "alloc_maxima": _encode_array(self._alloc_maxima),
            "matched": _encode_array(
                self._chunk(self._matched_chunks, np.int64)
            ),
            "matched_lat": _encode_array(
                self._chunk(self._matched_lat_chunks, self._samp_lat.dtype)
            ),
            "unmatched": _encode_array(
                self._chunk(self._unmatched_chunks, self._samp_addr.dtype)
            ),
        }

    @classmethod
    def from_state(
        cls, trace: "ColumnarTrace | TraceFile", state: dict
    ) -> "IncrementalAttributor":
        """Rebuild a cursor over ``trace`` at a serialised position.

        The restored attributor's :meth:`result` and every further
        advance are bit-identical to the attributor the state was
        taken from. Raises :class:`~repro.errors.AttributionError`
        when the state is malformed, from an incompatible layout
        version, or was taken over a different trace.
        """
        if not isinstance(state, dict):
            raise AttributionError("attributor state must be a mapping")
        if state.get("version") != ATTRIBUTOR_STATE_VERSION:
            raise AttributionError(
                "unsupported attributor state version "
                f"{state.get('version')!r} (expected "
                f"{ATTRIBUTOR_STATE_VERSION})"
            )
        attributor = cls(trace)
        if state.get("fingerprint") != attributor.fingerprint():
            raise AttributionError(
                "attributor state was taken over a different trace "
                f"(state {state.get('fingerprint')!r}, trace "
                f"{attributor.fingerprint()!r})"
            )
        try:
            consumed = int(state["consumed"])
            next_mut = int(state["next_mut"])
            flushed = int(state["flushed"])
        except (KeyError, TypeError, ValueError) as exc:
            raise AttributionError(
                f"malformed attributor state cursor: {exc}"
            ) from exc
        if not (
            0 <= consumed <= attributor._n_events
            and 0 <= next_mut <= attributor._mut_pos.size
            and 0 <= flushed <= attributor._smp_pos.size
        ):
            raise AttributionError(
                "attributor state cursor out of range for this trace"
            )
        table = _LiveTable()
        bases = _decode_array(state["table_bases"])
        ends = _decode_array(state["table_ends"])
        keys = _decode_array(state["table_keys"])
        if not (bases.size == ends.size == keys.size):
            raise AttributionError(
                "attributor state live-table columns disagree in length"
            )
        table._bases = bases.astype(np.int64)
        table._ends = ends.astype(np.int64)
        table._keys = keys.astype(np.int64)
        table.n = int(bases.size)
        attributor._table = table
        attributor._alloc_counts = _decode_array(state["alloc_counts"])
        attributor._alloc_totals = _decode_array(state["alloc_totals"])
        attributor._alloc_maxima = _decode_array(state["alloc_maxima"])
        if attributor._alloc_counts.size != len(attributor._keys):
            raise AttributionError(
                "attributor state tallies sized for a different key table"
            )
        attributor._matched_chunks = [_decode_array(state["matched"])]
        attributor._matched_lat_chunks = [_decode_array(state["matched_lat"])]
        attributor._unmatched_chunks = [_decode_array(state["unmatched"])]
        attributor._consumed = consumed
        attributor._next_mut = next_mut
        attributor._flushed = flushed
        return attributor

    # -- advancing ---------------------------------------------------------

    def _flush(self, s0: int, s1: int) -> None:
        addresses = self._samp_addr[s0:s1]
        hit, kids = self._table.match(addresses)
        self._matched_chunks.append(kids)
        self._matched_lat_chunks.append(self._samp_lat[s0:s1][hit])
        self._unmatched_chunks.append(addresses[~hit])

    def _advance_to_position(self, pos: int) -> None:
        """Consume sorted events in ``[consumed, pos)`` (clamped)."""
        pos = max(self._consumed, min(int(pos), self._n_events))
        if pos == self._consumed:
            return
        first_mut = self._next_mut
        mut_pos = self._mut_pos
        while self._next_mut < mut_pos.size and mut_pos[self._next_mut] < pos:
            j = self._next_mut
            cut = self._boundaries[j]
            if cut > self._flushed:
                self._flush(self._flushed, cut)
                self._flushed = cut
            if self._mut_is_alloc[j]:
                self._table.insert(
                    self._mut_addr[j], self._mut_size[j], self._mut_kid[j]
                )
            else:
                self._table.remove(self._mut_addr[j])
            self._next_mut = j + 1
        cut = int(np.searchsorted(self._smp_pos, pos))
        if cut > self._flushed:
            self._flush(self._flushed, cut)
            self._flushed = cut
        if self._next_mut > first_mut:
            consumed = slice(first_mut, self._next_mut)
            alloc = self._mut_is_alloc_arr[consumed]
            if alloc.any():
                kids = self._mut_kid_arr[consumed][alloc]
                sizes = self._mut_size_arr[consumed][alloc]
                self._alloc_counts += np.bincount(
                    kids, minlength=self._alloc_counts.size
                )
                np.add.at(self._alloc_totals, kids, sizes)
                np.maximum.at(self._alloc_maxima, kids, sizes)
        self._consumed = pos

    def advance_time(self, t: float) -> None:
        """Consume every event with timestamp *strictly* below ``t``.

        Events at exactly ``t`` stay unconsumed, so a run of equal
        timestamps is never split across windows — the oracle's
        tie-break order applies within one window whenever the ties are
        finally consumed.
        """
        self._advance_to_position(
            int(np.searchsorted(self._times_s, t, side="left"))
        )

    def advance_events(self, count: int) -> None:
        """Consume the next ``count`` events of the replay order.

        Unlike :meth:`advance_time` this may split a mutation epoch —
        or a run of equal timestamps — anywhere; the cursor resumes
        mid-epoch with the live table intact.
        """
        self._advance_to_position(self._consumed + max(0, int(count)))

    def advance_all(self) -> None:
        self._advance_to_position(self._n_events)

    # -- snapshot ----------------------------------------------------------

    def result(self) -> AttributionResult:
        """Attribution of everything consumed so far (non-destructive:
        snapshotting never moves the cursor)."""
        result = AttributionResult()
        result.max_size.update(self._static_max)
        result.total_allocated.update(self._static_total)
        result.n_allocs.update(self._static_nallocs)

        n_keys = len(self._keys)
        for kid in np.flatnonzero(self._alloc_counts):
            key = self._keys[kid]
            result.max_size[key] = int(self._alloc_maxima[kid])
            result.total_allocated[key] = int(self._alloc_totals[kid])
            result.n_allocs[key] = int(self._alloc_counts[kid])

        result.total_samples = int(self._flushed)
        if self._matched_chunks:
            matched = np.concatenate(self._matched_chunks)
            counts = np.bincount(matched, minlength=n_keys)
            for kid in np.flatnonzero(counts):
                result.misses[self._keys[kid]] = int(counts[kid])
            lats = np.concatenate(self._matched_lat_chunks)
            with_lat = lats >= 0
            if with_lat.any():
                lat_kids = matched[with_lat]
                lat_sums = np.zeros(n_keys, dtype=np.int64)
                np.add.at(lat_sums, lat_kids, lats[with_lat])
                for kid in np.flatnonzero(
                    np.bincount(lat_kids, minlength=n_keys)
                ):
                    result.latency_sum[self._keys[kid]] = int(lat_sums[kid])
        if self._unmatched_chunks:
            unmatched = np.concatenate(self._unmatched_chunks)
            if self._stack_base is not None:
                on_stack = (unmatched >= self._stack_base) & (
                    unmatched < self._stack_base + self._stack_size
                )
                stack_hits = int(np.count_nonzero(on_stack))
            else:
                stack_hits = 0
            if stack_hits:
                result.misses[ObjectKey.stack()] = stack_hits
                result.stack_samples = stack_hits
            result.unresolved_samples = int(unmatched.size) - stack_hits

        return result


def attribute_samples_vector(
    trace: "ColumnarTrace | TraceFile",
) -> AttributionResult:
    """Vectorised twin of :func:`attribute_samples` (bit-for-bit).

    Accepts a columnar trace directly (the fast path: no per-event
    Python objects exist at any point) or a row-oriented
    :class:`TraceFile`, which is columnarised first. Implemented as
    one exhaustive pass of :class:`IncrementalAttributor`, so the
    batch and windowed paths share every line of replay code.
    """
    attributor = IncrementalAttributor(trace)
    attributor.advance_all()
    return attributor.result()
