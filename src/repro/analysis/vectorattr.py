"""Vectorised sample-to-object attribution (the columnar fast path).

:func:`repro.analysis.attribution.attribute_samples` replays the trace
one dataclass event at a time — exact, and kept in-tree as the
correctness oracle, but ~10^5-10^6 events/s of pure Python. This
module reproduces its result bit for bit on a
:class:`~repro.trace.columnar.ColumnarTrace` by exploiting the
structure of the workload:

* **Heap mutations delimit epochs.** Only allocation/free events (and
  the statics, up front) change the live-range table. Between two
  mutations the table is frozen, so every sample of that *epoch* can
  be matched in one ``np.searchsorted`` batch against the sorted
  live-range arrays. The paper's traces are sample-heavy — thousands
  of allocation events under hundreds of thousands of PEBS samples —
  so almost all work lands in a few large batches.
* **Equal-timestamp ties follow the oracle exactly.** Events are
  ordered by a stable lexsort on ``(time, kind-priority)`` with the
  oracle's priorities (allocs visible before same-instant samples,
  frees applied after), so address reuse at a shared timestamp
  attributes identically.
* **Tallies are array reductions.** Per-object miss counts are one
  ``bincount`` over the matched key ids, latency sums one
  ``np.add.at`` (integer-exact), per-site alloc statistics
  (max/total/count) grouped reductions over the allocation columns,
  and stack-region/unresolved classification one vectorised range
  test over the unmatched addresses.

The live table itself is the batch-snapshot twin of
:class:`~repro.runtime.heap.LiveRangeIndex`: flat sorted NumPy arrays
mutated by memmove-style shifts, raising the same overlap/missing-free
errors at the same event, so malformed traces fail identically on
both paths.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.attribution import AttributionResult, stack_region_of
from repro.analysis.objects import ObjectKey
from repro.trace.columnar import (
    KIND_ALLOC,
    KIND_FREE,
    KIND_SAMPLE,
    ColumnarTrace,
)
from repro.trace.tracefile import TraceFile

#: Kind code -> tie-break priority (the oracle's ``_PRIORITY`` table:
#: alloc 0, sample 1, free 2, phase 3).
_KIND_PRIORITY = np.array([0, 2, 1, 3], dtype=np.uint8)


class _LiveTable:
    """Sorted live-range arrays with in-place shift mutation.

    ``bases``/``ends``/``key_ids`` occupy the prefix of capacity
    arrays; insert/remove shift the tail (NumPy handles the
    overlapping copy), so an epoch's snapshot is just the prefix
    views — no per-epoch export cost at all. Raises the exact errors
    of :class:`~repro.runtime.heap.LiveRangeIndex` so the fast path
    fails on malformed traces at the same event as the oracle.
    """

    def __init__(self, capacity: int = 256) -> None:
        self._bases = np.empty(capacity, dtype=np.int64)
        self._ends = np.empty(capacity, dtype=np.int64)
        self._keys = np.empty(capacity, dtype=np.int64)
        self.n = 0

    def _grow(self) -> None:
        capacity = max(2 * self._bases.size, 16)
        for name in ("_bases", "_ends", "_keys"):
            arr = getattr(self, name)
            grown = np.empty(capacity, dtype=arr.dtype)
            grown[: self.n] = arr[: self.n]
            setattr(self, name, grown)

    def insert(self, base: int, size: int, key_id: int) -> None:
        if size <= 0:
            raise ValueError(f"range size must be positive, got {size}")
        end = base + size
        pos = int(
            np.searchsorted(self._bases[: self.n], base, side="right")
        )
        if (pos > 0 and self._ends[pos - 1] > base) or (
            pos < self.n and self._bases[pos] < end
        ):
            raise ValueError(
                f"range [{base:#x},{end:#x}) overlaps a live range"
            )
        if self.n == self._bases.size:
            self._grow()
        n = self.n
        self._bases[pos + 1 : n + 1] = self._bases[pos:n]
        self._ends[pos + 1 : n + 1] = self._ends[pos:n]
        self._keys[pos + 1 : n + 1] = self._keys[pos:n]
        self._bases[pos] = base
        self._ends[pos] = end
        self._keys[pos] = key_id
        self.n = n + 1

    def remove(self, base: int) -> None:
        pos = int(np.searchsorted(self._bases[: self.n], base, side="left"))
        if pos == self.n or self._bases[pos] != base:
            raise KeyError(f"no live range starts at {base:#x}")
        n = self.n
        self._bases[pos : n - 1] = self._bases[pos + 1 : n]
        self._ends[pos : n - 1] = self._ends[pos + 1 : n]
        self._keys[pos : n - 1] = self._keys[pos + 1 : n]
        self.n = n - 1

    def match(
        self, addresses: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(hit_mask, key_ids_of_hits)`` for a batch of addresses."""
        n = self.n
        if n == 0:
            return (
                np.zeros(addresses.size, dtype=bool),
                np.empty(0, dtype=np.int64),
            )
        idx = (
            np.searchsorted(self._bases[:n], addresses, side="right") - 1
        )
        hit = idx >= 0
        safe = np.where(hit, idx, 0)
        hit &= addresses < self._ends[:n][safe]
        return hit, self._keys[:n][idx[hit]]


def attribute_samples_vector(
    trace: "ColumnarTrace | TraceFile",
) -> AttributionResult:
    """Vectorised twin of :func:`attribute_samples` (bit-for-bit).

    Accepts a columnar trace directly (the fast path: no per-event
    Python objects exist at any point) or a row-oriented
    :class:`TraceFile`, which is columnarised first.
    """
    if isinstance(trace, TraceFile):
        trace = ColumnarTrace.from_tracefile(trace)

    result = AttributionResult()
    stack_base, stack_size = stack_region_of(trace.metadata)

    # -- object-key table: interned callstack/static -> dense key id --------
    keys: list[ObjectKey] = []
    key_ids: dict[ObjectKey, int] = {}

    def key_id(key: ObjectKey) -> int:
        kid = key_ids.get(key)
        if kid is None:
            kid = key_ids[key] = len(keys)
            keys.append(key)
        return kid

    # Call-stack interning keys on the full stack (modules included);
    # attribution identity drops the module, so distinct interned
    # stacks may share one ObjectKey — remap through the key table.
    cs_key_ids = np.fromiter(
        (key_id(ObjectKey.dynamic(cs)) for cs in trace.callstacks),
        dtype=np.int64,
        count=len(trace.callstacks),
    )
    static_key_ids = [
        key_id(ObjectKey.static(name)) for name in trace.static_names
    ]

    # -- statics: the oracle's exact bookkeeping (last same-name static
    # wins the size fields, every record counts an allocation) ---------------
    table = _LiveTable()
    for i, kid in enumerate(static_key_ids):
        key = keys[kid]
        size = int(trace.static_sizes[i])
        table.insert(int(trace.static_addresses[i]), size, kid)
        result.max_size[key] = size
        result.total_allocated[key] = size
        result.n_allocs[key] = result.n_allocs.get(key, 0) + 1

    # -- per-site allocation statistics (order-independent reductions) ------
    n_keys = len(keys)
    alloc_mask = trace.kinds == KIND_ALLOC
    if alloc_mask.any():
        alloc_kids = cs_key_ids[trace.aux[alloc_mask]]
        alloc_sizes = trace.sizes[alloc_mask]
        n_allocs = np.bincount(alloc_kids, minlength=n_keys)
        totals = np.zeros(n_keys, dtype=np.int64)
        np.add.at(totals, alloc_kids, alloc_sizes)
        maxima = np.zeros(n_keys, dtype=np.int64)
        np.maximum.at(maxima, alloc_kids, alloc_sizes)
        for kid in np.flatnonzero(n_allocs):
            key = keys[kid]
            result.max_size[key] = int(maxima[kid])
            result.total_allocated[key] = int(totals[kid])
            result.n_allocs[key] = int(n_allocs[kid])

    # -- epoch replay --------------------------------------------------------
    order = np.lexsort((_KIND_PRIORITY[trace.kinds], trace.times))
    kinds_s = trace.kinds[order]

    mut_pos = np.flatnonzero((kinds_s == KIND_ALLOC) | (kinds_s == KIND_FREE))
    smp_pos = np.flatnonzero(kinds_s == KIND_SAMPLE)
    samp_addr = trace.addresses[order[smp_pos]]
    samp_lat = trace.latencies[order[smp_pos]]
    # Mutations are rare (the workload is sample-heavy): gather their
    # columns individually and hand the loop plain Python lists —
    # cheaper than permuting the full arrays and pulling NumPy scalars.
    mut_orig = order[mut_pos]
    mut_is_alloc = (kinds_s[mut_pos] == KIND_ALLOC).tolist()
    mut_addr = trace.addresses[mut_orig].tolist()
    mut_size = trace.sizes[mut_orig].tolist()
    # aux is -1 at frees (no callstack); clip before the gather — the
    # value is never read on the free branch.
    if cs_key_ids.size:
        mut_kid = cs_key_ids[np.maximum(trace.aux[mut_orig], 0)].tolist()
    else:
        mut_kid = [0] * mut_orig.size
    # Samples strictly before each mutation, in epoch order.
    boundaries = np.searchsorted(smp_pos, mut_pos).tolist()

    # Hits accumulate as aligned (key id, latency) chunk pairs; the
    # latency filter runs once over the concatenation, not per epoch.
    matched_chunks: list[np.ndarray] = []
    matched_lat_chunks: list[np.ndarray] = []
    unmatched_chunks: list[np.ndarray] = []

    def flush(s0: int, s1: int) -> None:
        addresses = samp_addr[s0:s1]
        hit, kids = table.match(addresses)
        matched_chunks.append(kids)
        matched_lat_chunks.append(samp_lat[s0:s1][hit])
        unmatched_chunks.append(addresses[~hit])

    prev = 0
    for j in range(len(boundaries)):
        cut = boundaries[j]
        if cut > prev:
            flush(prev, cut)
            prev = cut
        if mut_is_alloc[j]:
            table.insert(mut_addr[j], mut_size[j], mut_kid[j])
        else:
            table.remove(mut_addr[j])
    if smp_pos.size > prev:
        flush(prev, smp_pos.size)

    # -- tallies -------------------------------------------------------------
    result.total_samples = int(smp_pos.size)
    if matched_chunks:
        matched = np.concatenate(matched_chunks)
        counts = np.bincount(matched, minlength=n_keys)
        for kid in np.flatnonzero(counts):
            result.misses[keys[kid]] = int(counts[kid])
        lats = np.concatenate(matched_lat_chunks)
        with_lat = lats >= 0
        if with_lat.any():
            lat_kids = matched[with_lat]
            lat_sums = np.zeros(n_keys, dtype=np.int64)
            np.add.at(lat_sums, lat_kids, lats[with_lat])
            for kid in np.flatnonzero(
                np.bincount(lat_kids, minlength=n_keys)
            ):
                result.latency_sum[keys[kid]] = int(lat_sums[kid])
    if unmatched_chunks:
        unmatched = np.concatenate(unmatched_chunks)
        if stack_base is not None:
            on_stack = (unmatched >= stack_base) & (
                unmatched < stack_base + stack_size
            )
            stack_hits = int(np.count_nonzero(on_stack))
        else:
            stack_hits = 0
        if stack_hits:
            result.misses[ObjectKey.stack()] = stack_hits
            result.stack_samples = stack_hits
        result.unresolved_samples = int(unmatched.size) - stack_hits

    return result
