"""Memory-object identity.

The paper identifies dynamically-allocated variables "by their
allocation call-stack" and static variables "by their given name"
(Section III, Step 1). Samples falling outside both are stack/
automatic accesses, which the framework explicitly does not support
promoting — they still need an identity so the attribution accounting
is total.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.runtime.callstack import CallStack


class ObjectKind(Enum):
    DYNAMIC = "dynamic"
    STATIC = "static"
    STACK = "stack"
    UNRESOLVED = "unresolved"


@dataclass(frozen=True, slots=True)
class ObjectKey:
    """Hashable identity of one memory object.

    ``identity`` is the call-stack key tuple for dynamic objects, the
    variable name for statics, and a fixed sentinel for stack and
    unresolved accesses.
    """

    kind: ObjectKind
    identity: tuple | str

    @classmethod
    def dynamic(cls, callstack: CallStack) -> "ObjectKey":
        return cls(kind=ObjectKind.DYNAMIC, identity=callstack.key)

    @classmethod
    def static(cls, name: str) -> "ObjectKey":
        return cls(kind=ObjectKind.STATIC, identity=name)

    @classmethod
    def stack(cls) -> "ObjectKey":
        return cls(kind=ObjectKind.STACK, identity="<stack>")

    @classmethod
    def unresolved(cls) -> "ObjectKey":
        return cls(kind=ObjectKind.UNRESOLVED, identity="<unresolved>")

    @property
    def is_promotable(self) -> bool:
        """Only dynamic allocations can be redirected by interposition
        (Section III: "statically allocated objects cannot be migrated
        ... without modifying the application code")."""
        return self.kind == ObjectKind.DYNAMIC

    @property
    def label(self) -> str:
        """Short human-readable name (leaf frame or variable name)."""
        if self.kind == ObjectKind.DYNAMIC:
            function, file, line = self.identity[0]
            return f"{function}@{file}:{line}"
        return str(self.identity)

    def pretty(self) -> str:
        """Full rendering, e.g. for the advisor's human-readable list."""
        if self.kind == ObjectKind.DYNAMIC:
            chain = " <- ".join(
                f"{fn}({fi}:{ln})" for fn, fi, ln in self.identity
            )
            return f"dynamic: {chain}"
        return f"{self.kind.value}: {self.identity}"
