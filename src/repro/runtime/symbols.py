"""Program images, ASLR and symbol translation (binutils substitute).

Section III, Step 4: "Due to the inclusion of the ASLR security
features that randomize the position of library symbols in the
application address space, it is necessary not only to unwind the
call-stack but also to translate it at run-time (using the binutils
package)."

The substitute models a program as a set of :class:`ModuleImage`
objects (executable + libraries), each holding function symbols at
static offsets. A process maps every module at a randomized base
(the ASLR slide); ``backtrace()`` therefore yields slid addresses and
:class:`SymbolTable.translate` undoes the slide and resolves the
function/file/line — a real binary search over symbol offsets, so the
translation cost grows with the work performed exactly as in the
paper's Figure 3.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SymbolError
from repro.runtime.callstack import CallStack, Frame, RawCallStack


@dataclass(frozen=True, slots=True)
class FunctionSymbol:
    """One function inside a module image.

    ``offset`` is the static offset of the function's first byte from
    the module base; ``size`` bounds it. Call sites inside the function
    are addressed as ``offset + line - start_line`` so distinct source
    lines produce distinct return addresses.
    """

    name: str
    offset: int
    size: int
    file: str
    start_line: int = 1

    def __post_init__(self) -> None:
        if self.offset < 0 or self.size <= 0:
            raise SymbolError(f"bad symbol geometry for {self.name!r}")

    def contains(self, offset: int) -> bool:
        return self.offset <= offset < self.offset + self.size

    def line_of(self, offset: int) -> int:
        return self.start_line + (offset - self.offset)

    def offset_of_line(self, line: int) -> int:
        delta = line - self.start_line
        if not 0 <= delta < self.size:
            raise SymbolError(
                f"line {line} outside {self.name!r} "
                f"(lines {self.start_line}..{self.start_line + self.size - 1})"
            )
        return self.offset + delta


@dataclass
class ModuleImage:
    """Static image of one executable or shared library."""

    name: str
    size: int
    functions: list[FunctionSymbol] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.functions.sort(key=lambda f: f.offset)
        self._offsets = [f.offset for f in self.functions]
        prev_end = 0
        for f in self.functions:
            if f.offset < prev_end:
                raise SymbolError(
                    f"overlapping symbols in module {self.name!r} at {f.name!r}"
                )
            prev_end = f.offset + f.size
        if prev_end > self.size:
            raise SymbolError(
                f"module {self.name!r} too small for its symbols "
                f"({prev_end} > {self.size})"
            )

    def function(self, name: str) -> FunctionSymbol:
        for f in self.functions:
            if f.name == name:
                return f
        raise SymbolError(f"no function {name!r} in module {self.name!r}")

    def resolve_offset(self, offset: int) -> FunctionSymbol:
        """Binary search for the symbol covering a static offset."""
        idx = bisect.bisect_right(self._offsets, offset) - 1
        if idx >= 0 and self.functions[idx].contains(offset):
            return self.functions[idx]
        raise SymbolError(
            f"offset {offset:#x} resolves to no symbol in {self.name!r}"
        )


class SymbolTable:
    """Per-process view: modules mapped at ASLR-slid bases."""

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self._modules: list[tuple[int, ModuleImage]] = []  # (base, image)
        self._bases: list[int] = []
        self._rng = rng or np.random.default_rng(0)
        self.translations = 0  # instrumentation for the Fig. 3 study

    def map_module(self, image: ModuleImage, base: int) -> None:
        """Map ``image`` at runtime address ``base``."""
        for existing_base, existing in self._modules:
            if base < existing_base + existing.size and existing_base < base + image.size:
                raise SymbolError(
                    f"module {image.name!r} at {base:#x} overlaps "
                    f"{existing.name!r} at {existing_base:#x}"
                )
        self._modules.append((base, image))
        self._modules.sort(key=lambda pair: pair[0])
        self._bases = [b for b, _ in self._modules]

    @property
    def mapped_modules(self) -> list[tuple[int, "ModuleImage"]]:
        """(base, image) pairs in ascending base order."""
        return list(self._modules)

    def module_base(self, name: str) -> int:
        for base, image in self._modules:
            if image.name == name:
                return base
        raise SymbolError(f"module {name!r} is not mapped")

    def module(self, name: str) -> ModuleImage:
        for _, image in self._modules:
            if image.name == name:
                return image
        raise SymbolError(f"module {name!r} is not mapped")

    def address_of(self, module: str, function: str, line: int) -> int:
        """Runtime address of a call site (module base + line offset)."""
        base = self.module_base(module)
        sym = self.module(module).function(function)
        return base + sym.offset_of_line(line)

    def translate_address(self, address: int) -> Frame:
        """Resolve one runtime address to a symbolic frame."""
        self.translations += 1
        idx = bisect.bisect_right(self._bases, address) - 1
        if idx < 0:
            raise SymbolError(f"address {address:#x} maps to no module")
        base, image = self._modules[idx]
        offset = address - base
        if offset >= image.size:
            raise SymbolError(f"address {address:#x} maps to no module")
        sym = image.resolve_offset(offset)
        return Frame(
            module=image.name,
            function=sym.name,
            file=sym.file,
            line=sym.line_of(offset),
        )

    def translate(self, raw: RawCallStack) -> CallStack:
        """Translate a whole raw call-stack (binutils substitute)."""
        return CallStack(frames=tuple(self.translate_address(a) for a in raw))


# ---------------------------------------------------------------------------
# Figure 3 cost model
# ---------------------------------------------------------------------------
#
# Measured on the paper's Xeon Phi 7250 (glibc 2.17, binutils 2.23):
# unwinding has a large fixed cost (capturing the register context and
# priming the unwind tables) and a small per-frame cost, while
# translation is almost free to start but pays a larger per-frame cost
# (address-to-symbol search plus formatting). The curves cross at a
# call-stack depth of about 6. The constants below reproduce that
# shape; the simulated monitoring-overhead accounting consumes them.

UNWIND_FIXED_US: float = 14.0
UNWIND_PER_FRAME_US: float = 1.0
TRANSLATE_FIXED_US: float = 2.0
TRANSLATE_PER_FRAME_US: float = 3.0


def unwind_cost_us(depth: int) -> float:
    """Modelled ``backtrace()`` cost in microseconds for ``depth`` frames."""
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    return UNWIND_FIXED_US + UNWIND_PER_FRAME_US * depth

def translate_cost_us(depth: int) -> float:
    """Modelled translation cost in microseconds for ``depth`` frames."""
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    return TRANSLATE_FIXED_US + TRANSLATE_PER_FRAME_US * depth


def crossover_depth() -> int:
    """Smallest depth at which translation costs at least as much as
    unwinding (the paper reports ~6)."""
    depth = 1
    while translate_cost_us(depth) < unwind_cost_us(depth):
        depth += 1
    return depth
