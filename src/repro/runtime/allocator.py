"""Simulated dynamic-memory allocators.

:class:`PosixAllocator` stands in for the regular libc heap: a bump
pointer over its arena region plus size-segregated free lists, 16-byte
alignment, and the bookkeeping auto-hbwmalloc relies on (Section III,
Step 4 items 1-3: allocated regions per allocator, memory used per
allocator, execution statistics including the high-water mark).

The paper stresses that "memory allocations and deallocations need to
be handled by their specific memory allocation package and cannot be
mixed with others"; simulated allocators enforce exactly that by
refusing to free pointers they do not own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import AllocationError, InvalidFreeError, OutOfMemoryError
from repro.runtime.address_space import Region
from repro.runtime.callstack import RawCallStack
from repro.runtime.heap import LiveRangeIndex

_ALIGNMENT = 16


def _align_up(value: int, alignment: int = _ALIGNMENT) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


@dataclass(frozen=True, slots=True)
class Allocation:
    """One live (or historical) dynamic allocation."""

    address: int
    size: int
    allocator: str
    alloc_id: int
    callstack: Optional[RawCallStack] = None


@dataclass(slots=True)
class AllocatorStats:
    """Execution statistics one allocator maintains.

    These are the metrics auto-hbwmalloc "captures upon user request"
    (number of allocations, average allocation size, observed HWM).
    """

    n_allocs: int = 0
    n_frees: int = 0
    bytes_allocated: int = 0
    current_bytes: int = 0
    hwm_bytes: int = 0

    def on_alloc(self, size: int) -> None:
        self.n_allocs += 1
        self.bytes_allocated += size
        self.current_bytes += size
        if self.current_bytes > self.hwm_bytes:
            self.hwm_bytes = self.current_bytes

    def on_free(self, size: int) -> None:
        self.n_frees += 1
        self.current_bytes -= size

    @property
    def average_alloc_size(self) -> float:
        if self.n_allocs == 0:
            return 0.0
        return self.bytes_allocated / self.n_allocs


class PosixAllocator:
    """The default heap: bump allocation + size-segregated free lists."""

    name = "posix"

    def __init__(self, arena: Region) -> None:
        self.arena = arena
        self._brk = arena.base
        self._free_lists: dict[int, list[int]] = {}
        self.live: LiveRangeIndex[Allocation] = LiveRangeIndex()
        self.stats = AllocatorStats()
        self._next_id = 0

    # -- core operations ------------------------------------------------

    def malloc(
        self, size: int, callstack: RawCallStack | None = None
    ) -> Allocation:
        """Allocate ``size`` bytes; returns the allocation record."""
        if size <= 0:
            raise AllocationError(f"malloc of non-positive size {size}")
        rounded = _align_up(size)
        address = self._take_block(rounded)
        alloc = Allocation(
            address=address,
            size=size,
            allocator=self.name,
            alloc_id=self._next_id,
            callstack=callstack,
        )
        self._next_id += 1
        self.live.insert(address, rounded, alloc)
        self.stats.on_alloc(size)
        return alloc

    def posix_memalign(
        self, alignment: int, size: int, callstack: RawCallStack | None = None
    ) -> Allocation:
        """Aligned allocation; alignment must be a power of two >= 16."""
        if alignment < _ALIGNMENT or alignment & (alignment - 1) != 0:
            raise AllocationError(f"bad alignment {alignment}")
        if size <= 0:
            raise AllocationError(f"posix_memalign of non-positive size {size}")
        rounded = _align_up(size, alignment)
        # Over-allocate from the bump pointer so the aligned base fits.
        raw_base = self._bump(rounded + alignment)
        address = _align_up(raw_base, alignment)
        alloc = Allocation(
            address=address,
            size=size,
            allocator=self.name,
            alloc_id=self._next_id,
            callstack=callstack,
        )
        self._next_id += 1
        self.live.insert(address, rounded, alloc)
        self.stats.on_alloc(size)
        return alloc

    def free(self, address: int) -> Allocation:
        """Free a pointer previously returned by this allocator."""
        alloc = self.live.lookup_base(address)
        if alloc is None:
            raise InvalidFreeError(
                f"{self.name}: free of unowned pointer {address:#x}"
            )
        self.live.remove(address)
        rounded = _align_up(alloc.size)
        self._free_lists.setdefault(rounded, []).append(address)
        self.stats.on_free(alloc.size)
        return alloc

    def realloc(
        self, address: int, new_size: int, callstack: RawCallStack | None = None
    ) -> Allocation:
        """Grow/shrink an allocation (always moves, like a worst case)."""
        old = self.free(address)
        del old
        return self.malloc(new_size, callstack)

    def owns(self, address: int) -> bool:
        """True if ``address`` is the base of one of our live blocks."""
        return self.live.lookup_base(address) is not None

    # -- internals -------------------------------------------------------

    def _take_block(self, rounded: int) -> int:
        free = self._free_lists.get(rounded)
        if free:
            return free.pop()
        return self._bump(rounded)

    def _bump(self, rounded: int) -> int:
        address = self._brk
        if address + rounded > self.arena.end:
            raise OutOfMemoryError(
                f"{self.name}: arena {self.arena.name!r} exhausted "
                f"(brk={address:#x}, need {rounded} bytes)"
            )
        self._brk += rounded
        return address

    @property
    def live_bytes(self) -> int:
        return self.stats.current_bytes
