"""The simulated process: where applications, tracer and interposer meet.

A :class:`SimProcess` owns a virtual address space with ASLR-mapped
module images, a static-data segment, a stack, a DDR heap arena (the
posix allocator) and an MCDRAM arena (the memkind allocator). It
exposes the libc-like surface the paper's components hook:

* applications call :meth:`malloc` / :meth:`free` / :meth:`realloc` /
  :meth:`posix_memalign` while maintaining their call context with
  :meth:`in_function`;
* ``LD_PRELOAD``-style interposition is modelled by
  :meth:`install_malloc_hook` — the hook (tracer-wrapped
  auto-hbwmalloc, the autohbw baseline, ...) sees every allocation
  with its raw ``backtrace()`` call-stack and decides which allocator
  serves it;
* observers (the Extrae-like tracer) get notified of every
  allocation/deallocation with the virtual timestamp.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Protocol

import numpy as np

from repro.errors import AllocationError, InvalidFreeError
from repro.runtime.address_space import Region, VirtualAddressSpace
from repro.runtime.allocator import Allocation, PosixAllocator
from repro.runtime.callstack import RawCallStack
from repro.runtime.memkind import MemkindAllocator
from repro.runtime.symbols import ModuleImage, SymbolTable
from repro.units import GIB, MIB


class MallocHook(Protocol):
    """The surface an interposition library implements.

    ``memalign`` is optional — hooks without it see aligned requests
    as plain ``malloc`` calls with the padded size (alignment is a
    property of the serving allocator, not of the placement decision).
    """

    def malloc(self, size: int, callstack: RawCallStack) -> Allocation: ...

    def free(self, address: int) -> Allocation: ...

    def realloc(
        self, address: int, new_size: int, callstack: RawCallStack
    ) -> Allocation: ...


class AllocObserver(Protocol):
    """Passive observer of allocation events (the tracer)."""

    def on_malloc(self, alloc: Allocation, clock: float) -> None: ...

    def on_free(self, alloc: Allocation, clock: float) -> None: ...


class _Frame:
    __slots__ = ("module", "function", "line")

    def __init__(self, module: str, function: str, line: int) -> None:
        self.module = module
        self.function = function
        self.line = line


class SimProcess:
    """One simulated process of a (possibly MPI) job."""

    def __init__(
        self,
        modules: list[ModuleImage],
        rank: int = 0,
        seed: int = 0,
        static_segment_size: int = 64 * MIB,
        stack_size: int = 8 * MIB,
        heap_size: int = 8 * GIB,
        hbw_size: int = 16 * GIB,
        hbw_capacity: int | None = None,
    ) -> None:
        self.rank = rank
        self.rng = np.random.default_rng(np.random.SeedSequence([seed, rank]))
        self.vspace = VirtualAddressSpace(rng=self.rng)
        self.symbols = SymbolTable(rng=self.rng)

        for image in modules:
            region = self.vspace.carve_randomized(f"text:{image.name}", image.size)
            self.symbols.map_module(image, region.base)

        self.static_region = self.vspace.carve("static", static_segment_size)
        self._static_brk = self.static_region.base
        self._statics: dict[str, Region] = {}

        self.stack_region = self.vspace.carve_at(
            "stack", (self.vspace.SPAN - stack_size) & ~0xFFF, stack_size
        )

        heap_region = self.vspace.carve("heap:posix", heap_size)
        hbw_region = self.vspace.carve("heap:hbw", hbw_size)
        self.posix = PosixAllocator(heap_region)
        self.memkind = MemkindAllocator(hbw_region, capacity=hbw_capacity)

        self._frames: list[_Frame] = []
        self._hook: MallocHook | None = None
        self._observers: list[AllocObserver] = []
        #: address -> serving allocator (default-path bookkeeping only;
        #: hooks keep their own, as the paper's library does).
        self._route: dict[int, PosixAllocator] = {}
        self.clock = 0.0

    # -- call context ------------------------------------------------------

    @contextmanager
    def in_function(
        self, module: str, function: str, line: int | None = None
    ) -> Iterator[None]:
        """Enter ``function``; the call site line defaults to the symbol
        start so every inventory does not need explicit lines."""
        sym = self.symbols.module(module).function(function)
        self._frames.append(
            _Frame(module, function, line if line is not None else sym.start_line)
        )
        try:
            yield
        finally:
            self._frames.pop()

    def at_line(self, line: int) -> None:
        """Move the leaf frame to another source line (distinct call site)."""
        if not self._frames:
            raise AllocationError("no active frame")
        self._frames[-1].line = line

    def backtrace(self) -> RawCallStack:
        """glibc ``backtrace()``: runtime addresses, leaf first."""
        if not self._frames:
            raise AllocationError("backtrace with an empty call context")
        addresses = tuple(
            self.symbols.address_of(f.module, f.function, f.line)
            for f in reversed(self._frames)
        )
        return RawCallStack(addresses=addresses)

    @property
    def call_depth(self) -> int:
        return len(self._frames)

    # -- interposition -----------------------------------------------------

    def install_malloc_hook(self, hook: MallocHook) -> None:
        if self._hook is not None:
            raise AllocationError("a malloc hook is already installed")
        self._hook = hook

    def remove_malloc_hook(self) -> None:
        self._hook = None

    def add_observer(self, observer: AllocObserver) -> None:
        self._observers.append(observer)

    # -- statics -----------------------------------------------------------

    def register_static(self, name: str, size: int) -> Region:
        """Place a named static variable in the data segment."""
        if name in self._statics:
            raise AllocationError(f"static variable {name!r} already registered")
        if self._static_brk + size > self.static_region.end:
            raise AllocationError("static segment exhausted")
        region = Region(name=f"static:{name}", base=self._static_brk, size=size)
        self._static_brk += (size + 15) & ~15
        self._statics[name] = region
        return region

    def static_var(self, name: str) -> Region:
        return self._statics[name]

    @property
    def statics(self) -> dict[str, Region]:
        return dict(self._statics)

    # -- allocation surface --------------------------------------------------

    def malloc(self, size: int) -> int:
        """The application-facing ``malloc``. Returns the address."""
        callstack = self.backtrace()
        if self._hook is not None:
            alloc = self._hook.malloc(size, callstack)
        else:
            alloc = self.posix.malloc(size, callstack)
            self._route[alloc.address] = self.posix
        for obs in self._observers:
            obs.on_malloc(alloc, self.clock)
        return alloc.address

    def free(self, address: int) -> None:
        if self._hook is not None:
            alloc = self._hook.free(address)
        else:
            allocator = self._route.pop(address, None)
            if allocator is None:
                raise InvalidFreeError(f"free of unknown pointer {address:#x}")
            alloc = allocator.free(address)
        for obs in self._observers:
            obs.on_free(alloc, self.clock)

    def realloc(self, address: int, new_size: int) -> int:
        callstack = self.backtrace()
        if self._hook is not None:
            old = self._lookup_live(address)
            new_alloc = self._hook.realloc(address, new_size, callstack)
        else:
            allocator = self._route.pop(address, None)
            if allocator is None:
                raise InvalidFreeError(f"realloc of unknown pointer {address:#x}")
            old = allocator.live.lookup_base(address)
            new_alloc = allocator.realloc(address, new_size, callstack)
            self._route[new_alloc.address] = allocator
        for obs in self._observers:
            if old is not None:
                obs.on_free(old, self.clock)
            obs.on_malloc(new_alloc, self.clock)
        return new_alloc.address

    def posix_memalign(self, alignment: int, size: int) -> int:
        """Aligned allocation; interposed like ``malloc`` (the paper's
        library wraps ``posix_memalign`` alongside the rest)."""
        callstack = self.backtrace()
        if self._hook is not None:
            memalign = getattr(self._hook, "memalign", None)
            if memalign is not None:
                alloc = memalign(alignment, size, callstack)
            else:
                alloc = self._hook.malloc(size + alignment - 16, callstack)
        else:
            alloc = self.posix.posix_memalign(alignment, size, callstack)
            self._route[alloc.address] = self.posix
        for obs in self._observers:
            obs.on_malloc(alloc, self.clock)
        return alloc.address

    # -- OpenMP (kmp_*) allocation surface ------------------------------
    #
    # The paper's library wraps kmp_malloc, kmp_aligned_malloc,
    # kmp_free and kmp_realloc alongside the libc calls (Section III,
    # Step 4 footnote). The Intel OpenMP allocator ultimately draws
    # from the same heaps, so the simulated kmp_* surface routes
    # through the identical hook path — which is exactly what makes
    # OpenMP ``private``-construct allocations visible to the
    # framework ("allocations ... captured by the tools used in our
    # proposed framework", Section IV-D).

    def kmp_malloc(self, size: int) -> int:
        """OpenMP runtime allocation; interposed like ``malloc``."""
        return self.malloc(size)

    def kmp_aligned_malloc(self, alignment: int, size: int) -> int:
        """Aligned OpenMP allocation. The alignment is guaranteed by
        over-allocating in the serving allocator; interposition-wise it
        behaves like ``malloc`` (the hook decides the tier)."""
        if alignment <= 16:
            return self.malloc(size)
        # Round the request so any 16-byte-aligned base can be aligned
        # up inside it by the caller; the simulated world only tracks
        # the base, so size padding is the observable effect.
        return self.malloc(size + alignment - 16)

    def kmp_free(self, address: int) -> None:
        """OpenMP runtime free; interposed like ``free``."""
        self.free(address)

    def kmp_realloc(self, address: int, new_size: int) -> int:
        """OpenMP runtime realloc; interposed like ``realloc``."""
        return self.realloc(address, new_size)

    def _lookup_live(self, address: int) -> Allocation | None:
        for allocator in (self.posix, self.memkind):
            alloc = allocator.live.lookup_base(address)
            if alloc is not None:
                return alloc
        return None

    # -- time ----------------------------------------------------------------

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance time backwards: {seconds}")
        self.clock += seconds
