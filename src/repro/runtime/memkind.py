"""memkind substitute: a capacity-limited fast-tier allocator.

The paper's auto-hbwmalloc "forwards memory allocations to routines
from the memkind library" (Section III, Step 4) and keeps its own
accounting so it "will not request from the alternate allocator more
memory than that specified by the advisor". The simulated memkind
enforces the *physical* tier capacity; the advisor budget is enforced
one level up, inside auto-hbwmalloc, exactly as in the paper.

The observed memkind quirk — allocations between 1 and 2 MiB being
"more expensive than regular allocations" (Section IV-C) — is
modelled as per-allocation penalty seconds accumulated in
:attr:`MemkindAllocator.penalty_seconds`.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import OutOfMemoryError
from repro.machine.performance import memkind_alloc_penalty, memkind_free_penalty
from repro.runtime.address_space import Region
from repro.runtime.allocator import Allocation, PosixAllocator
from repro.runtime.callstack import RawCallStack


class MemkindAllocator(PosixAllocator):
    """MCDRAM arena allocator with hard capacity enforcement."""

    name = "memkind-hbw"

    def __init__(self, arena: Region, capacity: int | None = None) -> None:
        super().__init__(arena)
        self.capacity = capacity if capacity is not None else arena.size
        if self.capacity > arena.size:
            raise OutOfMemoryError(
                f"memkind capacity {self.capacity} exceeds arena size "
                f"{arena.size}"
            )
        #: Seconds lost to the slow 1-2 MiB memkind allocation path.
        self.penalty_seconds = 0.0
        #: The slow path is keyed on *real* allocation sizes; scaled
        #: simulations set this to 1/scale so the range check sees the
        #: paper-scale size.
        self.penalty_size_multiplier = 1.0
        #: Fault-injection hook: called with the request size before
        #: every allocation; returning True fails the allocation even
        #: though capacity accounting says it fits (fragmentation,
        #: NUMA pressure — the conditions real memkind fails under).
        self.fail_hook: Callable[[int], bool] | None = None
        #: Allocations the fail hook rejected (diagnostics).
        self.injected_failures = 0

    @property
    def remaining(self) -> int:
        """Capacity still available (bytes)."""
        return self.capacity - self.stats.current_bytes

    def fits(self, size: int) -> bool:
        """Would an allocation of ``size`` bytes stay within capacity?"""
        return self.stats.current_bytes + size <= self.capacity

    def _admit(self, size: int) -> None:
        """Raise an enriched OOM if this request cannot be served."""
        if not self.fits(size):
            raise OutOfMemoryError(
                f"{self.name}: capacity {self.capacity} exhausted",
                requested=size,
                tier=self.name,
                remaining=self.remaining,
            )
        if self.fail_hook is not None and self.fail_hook(size):
            self.injected_failures += 1
            raise OutOfMemoryError(
                f"{self.name}: injected allocation failure",
                requested=size,
                tier=self.name,
                remaining=self.remaining,
            )

    def malloc(
        self, size: int, callstack: RawCallStack | None = None
    ) -> Allocation:
        self._admit(size)
        alloc = super().malloc(size, callstack)
        self.penalty_seconds += memkind_alloc_penalty(
            int(size * self.penalty_size_multiplier)
        )
        return alloc

    def posix_memalign(
        self, alignment: int, size: int, callstack: RawCallStack | None = None
    ) -> Allocation:
        self._admit(size)
        alloc = super().posix_memalign(alignment, size, callstack)
        self.penalty_seconds += memkind_alloc_penalty(
            int(size * self.penalty_size_multiplier)
        )
        return alloc

    def free(self, address: int) -> Allocation:
        alloc = super().free(address)
        self.penalty_seconds += memkind_free_penalty(
            int(alloc.size * self.penalty_size_multiplier)
        )
        return alloc
