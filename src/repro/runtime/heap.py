"""Live-range index: address -> allocation lookup.

Both the tracer ("which object does this sampled address belong to?")
and the allocators ("is this ``free`` pointer one of mine?") need an
efficient mapping from addresses to live allocations. The index keeps
ranges sorted by base and offers scalar, vectorised batch, and
whole-table snapshot queries (the batch/snapshot paths back sample
attribution, where hundreds of thousands of sampled addresses must be
matched against the table).

Storage is amortised: a large sorted *compacted* region (plain lists,
never shifted by single-element ``insert``/``pop``) plus a small
sorted *pending* buffer of fresh inserts and a tombstone set of
removed compacted entries. Mutations touch only the small buffer
(O(pending) memmove, O(log n) search), and the two regions are merged
into one sorted table when the buffer grows past a threshold or when a
batch query needs the dense arrays — replacing the old O(n)-per-insert
``list.insert`` churn with O(n) per *compaction*. Overlap rejection is
still checked eagerly on every insert, against both regions.
"""

from __future__ import annotations

import bisect
from typing import Generic, TypeVar

import numpy as np

T = TypeVar("T")

#: Pending-ops (inserts + tombstones) allowed before a compaction.
#: Small enough that the O(pending) insert memmove stays trivial,
#: large enough that compactions are rare. Patchable in tests.
COMPACT_THRESHOLD = 512


class LiveRangeIndex(Generic[T]):
    """Non-overlapping interval index over ``[base, base+size)`` ranges."""

    def __init__(self) -> None:
        # Compacted region: sorted, mutually non-overlapping at the
        # time each entry was inserted; removals only tombstone.
        self._bases: list[int] = []
        self._ends: list[int] = []
        self._values: list[T] = []
        self._dead: set[int] = set()
        # Pending region: sorted, small; removals delete directly.
        self._pbases: list[int] = []
        self._pends: list[int] = []
        self._pvalues: list[T] = []
        self._live_bytes = 0
        # Dense snapshot (bases, ends, values) built by export_ranges;
        # invalidated by any mutation.
        self._snapshot: tuple[np.ndarray, np.ndarray, list[T]] | None = None

    def __len__(self) -> int:
        return len(self._bases) - len(self._dead) + len(self._pbases)

    # -- internal ------------------------------------------------------------

    def _compact(self) -> None:
        """Fold tombstones and the pending buffer into one sorted table."""
        if self._snapshot is None:
            self._build_snapshot()
        bases, ends, values = self._snapshot  # type: ignore[misc]
        self._bases = bases.tolist()
        self._ends = ends.tolist()
        self._values = list(values)
        self._dead = set()
        self._pbases, self._pends, self._pvalues = [], [], []

    def _maybe_compact(self) -> None:
        if len(self._pbases) + len(self._dead) > COMPACT_THRESHOLD:
            self._compact()

    def _build_snapshot(self) -> None:
        n = len(self._bases)
        bases = np.fromiter(self._bases, dtype=np.int64, count=n)
        ends = np.fromiter(self._ends, dtype=np.int64, count=n)
        values = self._values
        if self._dead:
            alive = np.ones(n, dtype=bool)
            alive[list(self._dead)] = False
            keep = np.flatnonzero(alive)
            bases, ends = bases[keep], ends[keep]
            values = [self._values[i] for i in keep]
        if self._pbases:
            k = len(self._pbases)
            bases = np.concatenate(
                [bases, np.fromiter(self._pbases, dtype=np.int64, count=k)]
            )
            ends = np.concatenate(
                [ends, np.fromiter(self._pends, dtype=np.int64, count=k)]
            )
            values = values + self._pvalues
            order = np.argsort(bases, kind="stable")
            bases, ends = bases[order], ends[order]
            values = [values[i] for i in order]
        elif values is self._values:
            values = list(values)
        self._snapshot = (bases, ends, values)

    def _left_live(self, idx: int) -> int:
        """Greatest live compacted index <= ``idx``, or -1."""
        while idx >= 0 and idx in self._dead:
            idx -= 1
        return idx

    def _right_live(self, idx: int) -> int:
        """Smallest live compacted index >= ``idx``, or len(bases)."""
        n = len(self._bases)
        while idx < n and idx in self._dead:
            idx += 1
        return idx

    # -- mutation ------------------------------------------------------------

    def insert(self, base: int, size: int, value: T) -> None:
        """Insert a live range; raises on overlap with an existing one."""
        if size <= 0:
            raise ValueError(f"range size must be positive, got {size}")
        end = base + size
        overlap = ValueError(
            f"range [{base:#x},{end:#x}) overlaps a live range"
        )
        # Pending neighbours (no tombstones there).
        pidx = bisect.bisect_right(self._pbases, base)
        if pidx > 0 and self._pends[pidx - 1] > base:
            raise overlap
        if pidx < len(self._pbases) and self._pbases[pidx] < end:
            raise overlap
        # Compacted neighbours: tombstoned entries do not constrain.
        # Left: only the nearest live predecessor can reach past base
        # (compacted entries are mutually non-overlapping).
        cidx = bisect.bisect_right(self._bases, base)
        left = self._left_live(cidx - 1)
        if left >= 0 and self._ends[left] > base:
            raise overlap
        right = self._right_live(cidx)
        if right < len(self._bases) and self._bases[right] < end:
            raise overlap
        self._pbases.insert(pidx, base)
        self._pends.insert(pidx, end)
        self._pvalues.insert(pidx, value)
        self._live_bytes += size
        self._snapshot = None
        self._maybe_compact()

    def remove(self, base: int) -> T:
        """Remove the range starting exactly at ``base``; returns its value."""
        pidx = bisect.bisect_left(self._pbases, base)
        if pidx < len(self._pbases) and self._pbases[pidx] == base:
            self._pbases.pop(pidx)
            end = self._pends.pop(pidx)
            value = self._pvalues.pop(pidx)
            self._live_bytes -= end - base
            self._snapshot = None
            return value
        cidx = bisect.bisect_left(self._bases, base)
        if (
            cidx < len(self._bases)
            and self._bases[cidx] == base
            and cidx not in self._dead
        ):
            value = self._values[cidx]
            self._dead.add(cidx)
            self._live_bytes -= self._ends[cidx] - base
            self._snapshot = None
            self._maybe_compact()
            return value
        raise KeyError(f"no live range starts at {base:#x}")

    # -- queries -------------------------------------------------------------

    def lookup(self, address: int) -> T | None:
        """Value of the live range containing ``address``, or None."""
        pidx = bisect.bisect_right(self._pbases, address) - 1
        if pidx >= 0 and address < self._pends[pidx]:
            return self._pvalues[pidx]
        # A tombstoned predecessor cannot hide a live hit: compacted
        # entries never overlap, so only the immediate predecessor can
        # contain the address at all.
        cidx = bisect.bisect_right(self._bases, address) - 1
        if (
            cidx >= 0
            and cidx not in self._dead
            and address < self._ends[cidx]
        ):
            return self._values[cidx]
        return None

    def lookup_base(self, base: int) -> T | None:
        """Value of the range starting exactly at ``base``, or None."""
        pidx = bisect.bisect_left(self._pbases, base)
        if pidx < len(self._pbases) and self._pbases[pidx] == base:
            return self._pvalues[pidx]
        cidx = bisect.bisect_left(self._bases, base)
        if (
            cidx < len(self._bases)
            and self._bases[cidx] == base
            and cidx not in self._dead
        ):
            return self._values[cidx]
        return None

    def export_ranges(self) -> tuple[np.ndarray, np.ndarray, list[T]]:
        """Dense snapshot ``(bases, ends, values)`` of all live ranges.

        ``bases``/``ends`` are sorted int64 arrays, ``values`` the
        matching payloads — the batch-attribution input shape, built
        once and cached until the next mutation. The arrays are shared
        with the cache: treat them as read-only.
        """
        if self._snapshot is None:
            self._build_snapshot()
        return self._snapshot  # type: ignore[return-value]

    def lookup_batch(self, addresses: np.ndarray) -> list[T | None]:
        """Vectorised point query for many addresses at once."""
        addresses = np.asarray(addresses, dtype=np.int64)
        bases, ends, values = self.export_ranges()
        if bases.size == 0:
            return [None] * addresses.size
        idx = np.searchsorted(bases, addresses, side="right") - 1
        valid = (idx >= 0) & (addresses < ends[np.clip(idx, 0, None)])
        out: list[T | None] = [None] * addresses.size
        for i in np.flatnonzero(valid):
            out[i] = values[int(idx[i])]
        return out

    def items(self) -> list[tuple[int, int, T]]:
        """All live ranges as ``(base, end, value)`` triples, sorted."""
        bases, ends, values = self.export_ranges()
        return list(zip(bases.tolist(), ends.tolist(), values))

    @property
    def live_bytes(self) -> int:
        return self._live_bytes
