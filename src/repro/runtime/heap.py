"""Live-range index: address -> allocation lookup.

Both the tracer ("which object does this sampled address belong to?")
and the allocators ("is this ``free`` pointer one of mine?") need an
efficient mapping from addresses to live allocations. The index keeps
ranges sorted by base and offers scalar and vectorised batch queries
(the batch path backs sample attribution, where hundreds of thousands
of sampled addresses must be matched).
"""

from __future__ import annotations

import bisect
from typing import Generic, TypeVar

import numpy as np

T = TypeVar("T")


class LiveRangeIndex(Generic[T]):
    """Non-overlapping interval index over ``[base, base+size)`` ranges."""

    def __init__(self) -> None:
        self._bases: list[int] = []
        self._ends: list[int] = []
        self._values: list[T] = []

    def __len__(self) -> int:
        return len(self._bases)

    def insert(self, base: int, size: int, value: T) -> None:
        """Insert a live range; raises on overlap with an existing one."""
        if size <= 0:
            raise ValueError(f"range size must be positive, got {size}")
        idx = bisect.bisect_right(self._bases, base)
        if idx > 0 and self._ends[idx - 1] > base:
            raise ValueError(
                f"range [{base:#x},{base + size:#x}) overlaps a live range"
            )
        if idx < len(self._bases) and self._bases[idx] < base + size:
            raise ValueError(
                f"range [{base:#x},{base + size:#x}) overlaps a live range"
            )
        self._bases.insert(idx, base)
        self._ends.insert(idx, base + size)
        self._values.insert(idx, value)

    def remove(self, base: int) -> T:
        """Remove the range starting exactly at ``base``; returns its value."""
        idx = bisect.bisect_left(self._bases, base)
        if idx == len(self._bases) or self._bases[idx] != base:
            raise KeyError(f"no live range starts at {base:#x}")
        self._bases.pop(idx)
        self._ends.pop(idx)
        return self._values.pop(idx)

    def lookup(self, address: int) -> T | None:
        """Value of the live range containing ``address``, or None."""
        idx = bisect.bisect_right(self._bases, address) - 1
        if idx >= 0 and address < self._ends[idx]:
            return self._values[idx]
        return None

    def lookup_base(self, base: int) -> T | None:
        """Value of the range starting exactly at ``base``, or None."""
        idx = bisect.bisect_left(self._bases, base)
        if idx < len(self._bases) and self._bases[idx] == base:
            return self._values[idx]
        return None

    def lookup_batch(self, addresses: np.ndarray) -> list[T | None]:
        """Vectorised point query for many addresses at once."""
        addresses = np.asarray(addresses, dtype=np.int64)
        if len(self._bases) == 0:
            return [None] * addresses.size
        bases = np.asarray(self._bases, dtype=np.int64)
        ends = np.asarray(self._ends, dtype=np.int64)
        idx = np.searchsorted(bases, addresses, side="right") - 1
        valid = (idx >= 0) & (addresses < ends[np.clip(idx, 0, None)])
        out: list[T | None] = [None] * addresses.size
        for i in np.flatnonzero(valid):
            out[i] = self._values[int(idx[i])]
        return out

    def items(self) -> list[tuple[int, int, T]]:
        """All live ranges as ``(base, end, value)`` triples, sorted."""
        return list(zip(self._bases, self._ends, self._values))

    @property
    def live_bytes(self) -> int:
        return sum(e - b for b, e in zip(self._bases, self._ends))
