"""Virtual address space with ASLR region carving.

Provides the address ranges everything else lives in: module text
segments (randomized — this is why call-stack translation is needed at
all), the static data segment, the stack, and one heap arena per
allocator. Regions never overlap; attribution of sampled addresses
relies on that invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AddressSpaceError
from repro.units import PAGE_SIZE, page_round_up


@dataclass(frozen=True, slots=True)
class Region:
    """One carved address range ``[base, base + size)``."""

    name: str
    base: int
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise AddressSpaceError(f"region {self.name!r}: size must be positive")
        if self.base < 0:
            raise AddressSpaceError(f"region {self.name!r}: negative base")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def overlaps(self, other: "Region") -> bool:
        return self.base < other.end and other.base < self.end


class VirtualAddressSpace:
    """A 47-bit user address space carved into named regions.

    ``carve`` hands out page-aligned regions bottom-up from a moving
    break; ``carve_randomized`` adds an ASLR slide drawn from ``rng``
    so module bases differ between processes — the property that forces
    the interposition library to translate call-stacks at run time.
    """

    #: Canonical user-space span on x86-64.
    SPAN: int = 1 << 47

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self._rng = rng or np.random.default_rng(0)
        self._regions: list[Region] = []
        self._break = 0x400000  # traditional ELF load floor

    @property
    def regions(self) -> tuple[Region, ...]:
        return tuple(self._regions)

    def region(self, name: str) -> Region:
        for r in self._regions:
            if r.name == name:
                return r
        raise AddressSpaceError(f"no region named {name!r}")

    def _admit(self, region: Region) -> Region:
        if region.end > self.SPAN:
            raise AddressSpaceError(
                f"region {region.name!r} exceeds the address space"
            )
        for existing in self._regions:
            if existing.overlaps(region):
                raise AddressSpaceError(
                    f"region {region.name!r} overlaps {existing.name!r}"
                )
            if existing.name == region.name:
                raise AddressSpaceError(f"duplicate region name {region.name!r}")
        self._regions.append(region)
        return region

    def _advance_break(self, region: Region) -> None:
        if region.end > self._break:
            self._break = page_round_up(region.end)

    def carve(self, name: str, size: int) -> Region:
        """Carve the next page-aligned region of at least ``size`` bytes."""
        region = Region(name=name, base=self._break, size=page_round_up(size))
        self._admit(region)
        self._advance_break(region)
        return region

    def carve_randomized(
        self, name: str, size: int, max_slide_pages: int = 1 << 20
    ) -> Region:
        """Carve with a random page-granular ASLR slide."""
        slide = int(self._rng.integers(1, max_slide_pages)) * PAGE_SIZE
        region = Region(
            name=name, base=self._break + slide, size=page_round_up(size)
        )
        self._admit(region)
        self._advance_break(region)
        return region

    def carve_at(self, name: str, base: int, size: int) -> Region:
        """Carve a region at a fixed base (e.g. the stack near the top)."""
        region = Region(name=name, base=base, size=page_round_up(size))
        return self._admit(region)

    def owner_of(self, address: int) -> Region | None:
        """The region containing ``address``, or None."""
        for r in self._regions:
            if r.contains(address):
                return r
        return None
