"""Call-stacks: raw (addresses) and translated (symbolic frames).

The paper identifies dynamically-allocated objects "by their allocation
call-stack" captured with glibc's ``backtrace()`` (Section III, Step
1). ``backtrace()`` yields raw return addresses, which — because of
ASLR — only become comparable across runs after translation to
function/file/line symbols (Section III, Step 4). Both forms live
here:

* :class:`RawCallStack` — the tuple of runtime addresses ``backtrace``
  returns, leaf-most frame first;
* :class:`Frame` / :class:`CallStack` — the translated, symbolic form
  that placement reports are written in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, slots=True)
class Frame:
    """One translated stack frame."""

    module: str
    function: str
    file: str
    line: int

    def __str__(self) -> str:
        return f"{self.function} ({self.file}:{self.line}) [{self.module}]"

    @property
    def key(self) -> tuple[str, str, int]:
        """Identity used for report matching (module-independent).

        Reports must match across runs even if a library is rebuilt at
        a different base, so the module name is not part of the key.
        """
        return (self.function, self.file, self.line)


@dataclass(frozen=True, slots=True)
class RawCallStack:
    """Raw return addresses, leaf first (what ``backtrace()`` yields)."""

    addresses: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.addresses:
            raise ValueError("a call-stack needs at least one frame")

    def __len__(self) -> int:
        return len(self.addresses)

    def __iter__(self) -> Iterator[int]:
        return iter(self.addresses)

    def __hash__(self) -> int:
        return hash(self.addresses)


@dataclass(frozen=True, slots=True)
class CallStack:
    """A translated call-stack, leaf-most frame first."""

    frames: tuple[Frame, ...]

    def __post_init__(self) -> None:
        if not self.frames:
            raise ValueError("a call-stack needs at least one frame")

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self) -> Iterator[Frame]:
        return iter(self.frames)

    @property
    def leaf(self) -> Frame:
        return self.frames[0]

    @property
    def root(self) -> Frame:
        return self.frames[-1]

    @property
    def key(self) -> tuple[tuple[str, str, int], ...]:
        """Match key: the sequence of frame keys, leaf first."""
        return tuple(f.key for f in self.frames)

    def pretty(self, indent: str = "  ") -> str:
        """Multi-line rendering, leaf first, for reports and logs."""
        return "\n".join(f"{indent}#{i} {f}" for i, f in enumerate(self.frames))

    @classmethod
    def from_frames(cls, frames: list[Frame]) -> "CallStack":
        return cls(frames=tuple(frames))


def common_prefix_depth(a: CallStack, b: CallStack) -> int:
    """Number of identical frames from the *root* end of two stacks.

    Useful to cluster allocation sites that share outer structure
    (e.g. everything under ``SetupProblem``).
    """
    ra = list(reversed(a.frames))
    rb = list(reversed(b.frames))
    depth = 0
    for fa, fb in zip(ra, rb):
        if fa.key != fb.key:
            break
        depth += 1
    return depth
