"""Simulated process runtime.

Substitute for the OS/libc facilities the paper's framework interposes
on: a virtual address space with ASLR, glibc-style ``backtrace()``
call-stacks, binutils-style symbol translation, a default (posix)
allocator and a capacity-limited memkind allocator, all owned by a
:class:`SimProcess` that exposes the ``malloc``/``free`` surface the
interposition libraries wrap.
"""

from repro.runtime.callstack import Frame, CallStack, RawCallStack
from repro.runtime.symbols import (
    FunctionSymbol,
    ModuleImage,
    SymbolTable,
    unwind_cost_us,
    translate_cost_us,
)
from repro.runtime.address_space import Region, VirtualAddressSpace
from repro.runtime.heap import LiveRangeIndex
from repro.runtime.allocator import Allocation, AllocatorStats, PosixAllocator
from repro.runtime.memkind import MemkindAllocator
from repro.runtime.process import SimProcess

__all__ = [
    "Frame",
    "CallStack",
    "RawCallStack",
    "FunctionSymbol",
    "ModuleImage",
    "SymbolTable",
    "unwind_cost_us",
    "translate_cost_us",
    "Region",
    "VirtualAddressSpace",
    "LiveRangeIndex",
    "Allocation",
    "AllocatorStats",
    "PosixAllocator",
    "MemkindAllocator",
    "SimProcess",
]
