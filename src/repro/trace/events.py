"""Trace event records.

A Paraver trace-file is "a sequence of time-stamped events reflecting
the actual application execution" (Section III, Step 2). The
simulated trace keeps the same information content in typed records:
allocations/deallocations with their translated call-stacks and sizes,
sampled memory references, phase (function) markers, and the static
variables Extrae identifies "by their given name".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.callstack import CallStack, Frame


@dataclass(frozen=True, slots=True)
class AllocEvent:
    """A dynamic allocation, as Extrae records it."""

    time: float
    rank: int
    address: int
    size: int
    callstack: CallStack
    allocator: str = "posix"

    def to_dict(self) -> dict:
        return {
            "type": "alloc",
            "time": self.time,
            "rank": self.rank,
            "address": self.address,
            "size": self.size,
            "allocator": self.allocator,
            "callstack": [
                [f.module, f.function, f.file, f.line] for f in self.callstack
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AllocEvent":
        frames = tuple(
            Frame(module=m, function=fn, file=fi, line=ln)
            for m, fn, fi, ln in data["callstack"]
        )
        return cls(
            time=data["time"],
            rank=data["rank"],
            address=data["address"],
            size=data["size"],
            allocator=data.get("allocator", "posix"),
            callstack=CallStack(frames=frames),
        )


@dataclass(frozen=True, slots=True)
class FreeEvent:
    """A deallocation."""

    time: float
    rank: int
    address: int

    def to_dict(self) -> dict:
        return {
            "type": "free",
            "time": self.time,
            "rank": self.rank,
            "address": self.address,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FreeEvent":
        return cls(time=data["time"], rank=data["rank"], address=data["address"])


@dataclass(frozen=True, slots=True)
class SampleEvent:
    """A PEBS sample folded into the trace.

    ``latency_cycles`` is only populated when the PMU provides it —
    Intel Xeon parts report the access cost per sampled load, Xeon Phi
    does not (Section III, Step 1). The latency-weighted advisor
    refinement of Section III consumes it when present.
    """

    time: float
    rank: int
    address: int
    latency_cycles: int | None = None

    def to_dict(self) -> dict:
        data = {
            "type": "sample",
            "time": self.time,
            "rank": self.rank,
            "address": self.address,
        }
        if self.latency_cycles is not None:
            data["latency_cycles"] = self.latency_cycles
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SampleEvent":
        return cls(
            time=data["time"],
            rank=data["rank"],
            address=data["address"],
            latency_cycles=data.get("latency_cycles"),
        )


@dataclass(frozen=True, slots=True)
class PhaseEvent:
    """Entry into a code phase (function) — the Folding signal."""

    time: float
    rank: int
    function: str

    def to_dict(self) -> dict:
        return {
            "type": "phase",
            "time": self.time,
            "rank": self.rank,
            "function": self.function,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PhaseEvent":
        return cls(
            time=data["time"], rank=data["rank"], function=data["function"]
        )


@dataclass(frozen=True, slots=True)
class StaticVarRecord:
    """A named static variable and its address range."""

    name: str
    rank: int
    address: int
    size: int

    def to_dict(self) -> dict:
        return {
            "type": "static",
            "name": self.name,
            "rank": self.rank,
            "address": self.address,
            "size": self.size,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StaticVarRecord":
        return cls(
            name=data["name"],
            rank=data["rank"],
            address=data["address"],
            size=data["size"],
        )
