"""The Extrae substitute: hooks a process, emits a trace.

Section III, Step 1: "to perform this analysis the framework only
needs dynamic-memory allocations and deallocations and sampled memory
references for the LLC misses". The tracer therefore:

* observes every allocation/deallocation of a :class:`SimProcess`
  (registering address range, size and the *translated* call-stack —
  Extrae uses binutils to obtain human-readable references);
* filters allocations below a minimum size (the paper monitors only
  allocations larger than 4 KiB "to avoid small (and possibly
  frequent) allocations such as those related to I/O");
* owns the PEBS sampler and folds its samples into the trace;
* records phase (function) markers for the Folding analysis;
* accounts its own monitoring overhead so Table I's overhead column
  can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pebs.sampler import PebsSampler
from repro.runtime.allocator import Allocation
from repro.runtime.process import SimProcess
from repro.runtime.symbols import translate_cost_us, unwind_cost_us
from repro.trace.events import (
    AllocEvent,
    FreeEvent,
    PhaseEvent,
    SampleEvent,
    StaticVarRecord,
)
from repro.trace.tracefile import TraceFile
from repro.units import KIB, MICROSECOND


@dataclass(frozen=True, slots=True)
class TracerConfig:
    """Knobs of the tracing stage (paper defaults from Section IV-A)."""

    #: Minimum allocation size to record.
    min_alloc_size: int = 4 * KIB
    #: PEBS sampling period (paper: 37,589 on hardware).
    sampling_period: int = 7
    #: Modelled cost of storing one trace record.
    record_cost_us: float = 0.3
    #: Modelled cost of servicing one PEBS interrupt.
    sample_cost_us: float = 1.5
    #: Record per-sample access latency (Xeon-style PEBS; the Xeon Phi
    #: PMU the paper uses does not provide it).
    record_latency: bool = False
    #: Keep sampled misses as NumPy columns instead of per-sample
    #: event objects. The sparse alloc/free/phase records still go
    #: through :attr:`Tracer.trace`; samples — the bulk of any trace —
    #: never exist as Python objects, and :meth:`Tracer.columnar_trace`
    #: merges both into a :class:`~repro.trace.columnar.ColumnarTrace`.
    columnar_samples: bool = False


class Tracer:
    """Per-process tracer; attach with :meth:`attach`."""

    def __init__(
        self,
        config: TracerConfig | None = None,
        application: str = "",
        rank: int = 0,
    ) -> None:
        self.config = config or TracerConfig()
        self.rank = rank
        self.trace = TraceFile(
            application=application,
            ranks=1,
            sampling_period=self.config.sampling_period,
        )
        self.sampler = PebsSampler(
            period=self.config.sampling_period,
            phase=rank % self.config.sampling_period,
        )
        self._process: SimProcess | None = None
        #: Seconds of perturbation the tracer added (Table I overhead).
        self.overhead_seconds = 0.0
        #: Column chunks of picked samples (``columnar_samples`` mode):
        #: (addresses, times, latencies-or-None) per fed chunk.
        self._sample_chunks: list[
            tuple[np.ndarray, np.ndarray, np.ndarray | None]
        ] = []

    # -- lifecycle -----------------------------------------------------------

    def attach(self, process: SimProcess) -> None:
        self._process = process
        process.add_observer(self)
        self.trace.metadata["stack_region"] = [
            process.stack_region.base,
            process.stack_region.size,
        ]
        for name, region in process.statics.items():
            self.trace.statics.append(
                StaticVarRecord(
                    name=name, rank=self.rank, address=region.base, size=region.size
                )
            )

    # -- AllocObserver -------------------------------------------------------

    def on_malloc(self, alloc: Allocation, clock: float) -> None:
        if alloc.size < self.config.min_alloc_size:
            return
        assert self._process is not None, "tracer not attached"
        callstack = self._process.symbols.translate(alloc.callstack)
        depth = len(callstack)
        self.overhead_seconds += (
            unwind_cost_us(depth)
            + translate_cost_us(depth)
            + self.config.record_cost_us
        ) * MICROSECOND
        self.trace.append(
            AllocEvent(
                time=clock,
                rank=self.rank,
                address=alloc.address,
                size=alloc.size,
                callstack=callstack,
                allocator=alloc.allocator,
            )
        )

    def on_free(self, alloc: Allocation, clock: float) -> None:
        if alloc.size < self.config.min_alloc_size:
            return
        self.overhead_seconds += self.config.record_cost_us * MICROSECOND
        self.trace.append(
            FreeEvent(time=clock, rank=self.rank, address=alloc.address)
        )

    # -- sampling ------------------------------------------------------------

    def record_misses(
        self,
        addresses: np.ndarray,
        times: np.ndarray,
        latencies: np.ndarray | None = None,
    ) -> int:
        """Feed a chunk of LLC misses through the PEBS sampler.

        Returns the number of samples folded into the trace.
        ``latencies`` is only stored when the tracer is configured for
        a latency-reporting PMU.
        """
        if not self.config.record_latency:
            latencies = None
        # Array-native attribution: the sampler picks positions in
        # NumPy and only the sparse picks become trace records —
        # per-miss Python work never happens.
        picked_addrs, picked_times, picked_lats = (
            self.sampler.sample_chunk_arrays(addresses, times, latencies)
        )
        if self.config.columnar_samples:
            n_picked = int(picked_addrs.size)
            if n_picked:
                self._sample_chunks.append(
                    (picked_addrs, picked_times, picked_lats)
                )
            self.overhead_seconds += (
                n_picked * self.config.sample_cost_us * MICROSECOND
            )
            return n_picked
        rank = self.rank
        if picked_lats is None:
            events = [
                SampleEvent(time=float(t), rank=rank, address=int(a))
                for a, t in zip(picked_addrs, picked_times)
            ]
        else:
            events = [
                SampleEvent(
                    time=float(t),
                    rank=rank,
                    address=int(a),
                    latency_cycles=int(c),
                )
                for a, t, c in zip(picked_addrs, picked_times, picked_lats)
            ]
        self.trace.extend(events)
        self.overhead_seconds += (
            len(events) * self.config.sample_cost_us * MICROSECOND
        )
        return len(events)

    def record_phase(self, function: str, clock: float) -> None:
        """Mark entry into a code phase (for the Folding analysis)."""
        self.trace.append(
            PhaseEvent(time=clock, rank=self.rank, function=function)
        )

    def columnar_trace(self) -> "ColumnarTrace":
        """Everything traced so far as one :class:`ColumnarTrace`.

        In ``columnar_samples`` mode the buffered sample columns are
        appended to the columnarised event records — samples go from
        the PMU to the columnar trace without ever existing as Python
        objects. Event order within the arrays is "records then
        samples"; attribution orders by time/priority itself, so the
        result is analysis-equivalent to the row-mode trace.
        """
        from repro.trace.columnar import (
            KIND_SAMPLE,
            NO_LATENCY,
            ColumnarTrace,
        )

        base = ColumnarTrace.from_tracefile(self.trace)
        if not self._sample_chunks:
            return base
        addr = np.concatenate([c[0] for c in self._sample_chunks])
        times = np.concatenate([c[1] for c in self._sample_chunks])
        lats = np.concatenate(
            [
                c[2]
                if c[2] is not None
                else np.full(c[0].size, NO_LATENCY, dtype=np.int64)
                for c in self._sample_chunks
            ]
        )
        n = addr.size
        return ColumnarTrace(
            application=base.application,
            ranks=base.ranks,
            sampling_period=base.sampling_period,
            metadata=base.metadata,
            times=np.concatenate([base.times, times.astype(np.float64)]),
            kinds=np.concatenate(
                [base.kinds, np.full(n, KIND_SAMPLE, dtype=np.uint8)]
            ),
            event_ranks=np.concatenate(
                [base.event_ranks, np.full(n, self.rank, dtype=np.int32)]
            ),
            addresses=np.concatenate(
                [base.addresses, addr.astype(np.int64)]
            ),
            sizes=np.concatenate([base.sizes, np.zeros(n, dtype=np.int64)]),
            latencies=np.concatenate(
                [base.latencies, lats.astype(np.int64)]
            ),
            aux=np.concatenate([base.aux, np.full(n, -1, dtype=np.int32)]),
            allocator_ids=np.concatenate(
                [base.allocator_ids, np.full(n, -1, dtype=np.int32)]
            ),
            callstacks=base.callstacks,
            functions=base.functions,
            allocators=base.allocators,
            static_names=base.static_names,
            static_ranks=base.static_ranks,
            static_addresses=base.static_addresses,
            static_sizes=base.static_sizes,
        )

    # -- summary -------------------------------------------------------------

    @property
    def n_samples(self) -> int:
        return self.sampler.samples_taken

    def monitoring_overhead(self, base_runtime: float) -> float:
        """Overhead as a fraction of the uninstrumented runtime."""
        if base_runtime <= 0:
            raise ValueError("base runtime must be positive")
        return self.overhead_seconds / base_runtime
