"""Tracing layer (Extrae/Paraver substitute)."""

from repro.trace.events import (
    AllocEvent,
    FreeEvent,
    SampleEvent,
    PhaseEvent,
    StaticVarRecord,
)
from repro.trace.columnar import (
    ColumnarTrace,
    is_columnar_trace,
    load_any_trace,
)
from repro.trace.tracefile import TraceFile
from repro.trace.tracer import Tracer, TracerConfig

__all__ = [
    "AllocEvent",
    "FreeEvent",
    "SampleEvent",
    "PhaseEvent",
    "StaticVarRecord",
    "ColumnarTrace",
    "is_columnar_trace",
    "load_any_trace",
    "TraceFile",
    "Tracer",
    "TracerConfig",
]
