"""Zero-copy shared trace plane for multi-process sweeps.

A sweep grid is many (budget, strategy) cells over a handful of
applications, and profiling is placement-invariant: every worker that
executes a cell of application A needs exactly the same
:class:`~repro.trace.columnar.ColumnarTrace` and the same ground
truth. Without sharing, an N-worker pool pays N× the profiling time
and N× the trace RSS ("On the Applicability of PEBS based Online
Memory Access Tracking … at Scale" makes the same observation at the
system level: sample *acquisition* is the cost to amortise, placement
decisions are cheap).

The :class:`SharedTracePlane` publishes each application's profiling
products exactly once per host:

* **shm backend** — the column arrays are packed, 64-byte aligned,
  into one ``multiprocessing.shared_memory`` segment per application;
  workers attach and wrap zero-copy read-only NumPy views around the
  segment buffer.
* **mmap backend** — the columns are written once as an uncompressed
  directory container (:meth:`ColumnarTrace.save_dir`); workers load
  with ``mmap=True`` and the page cache shares one physical copy.

What travels to the worker is only a small picklable
:class:`PlaneHandle` — segment name / directory path, per-column
layout with CRC-32s, and the JSON-able scalars (trace header, ground
truth counters). :func:`attach_plane` verifies every checksum before
handing out views; anything torn, missing, or mismatched raises
:class:`~repro.errors.PlaneError`, which callers treat as "materialise
privately", never as a failed cell.

Lifecycle is crash-safe by construction: the parent keeps its
``resource_tracker`` registration, so segments of a SIGKILL'd parent
are reaped by the tracker process, while workers attach *untracked*
(otherwise every worker exit would try to double-unlink the segment
and warn). Normal shutdown is ``close()``, which unlinks idempotently
and tolerates segments that already disappeared.
"""

from __future__ import annotations

import io
import shutil
import tempfile
import zlib
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path

import numpy as np

from repro.apps.base import GroundTruth, WindowTruth
from repro.errors import PlaneError, TraceError
from repro.ioutil import atomic_write_bytes
from repro.trace.columnar import ColumnarTrace

BACKEND_SHM = "shm"
BACKEND_MMAP = "mmap"
BACKENDS: tuple[str, ...] = (BACKEND_SHM, BACKEND_MMAP)

#: Columns of the ground-truth miss stream, published alongside the
#: trace columns (placement runners replay them through the cache and
#: bandwidth models).
_TRUTH_COLUMNS = ("truth_addresses", "truth_times")
_TRUTH_DTYPES = {"truth_addresses": np.uint64, "truth_times": np.float64}

#: Alignment of each column inside an shm segment (cache-line friendly
#: and safe for any column dtype).
_ALIGN = 64


@dataclass(frozen=True)
class PlaneColumn:
    """Layout of one array inside a shared-memory segment."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int
    crc: int


@dataclass(frozen=True)
class PlaneHandle:
    """Everything a worker needs to attach one published plane.

    Small and picklable — it crosses the pool/supervisor IPC boundary
    with every batch; the arrays themselves never do.
    """

    #: Content-derived identity of the published profile (the sweep
    #: executor keys its per-worker attach cache on this).
    key: str
    backend: str
    #: shm: segment name. mmap: plane directory path.
    location: str
    total_bytes: int
    #: shm only; the mmap backend carries its layout in the container.
    columns: tuple[PlaneColumn, ...]
    #: JSON-able scalars: ``header`` (trace header dict, shm only) and
    #: ``truth`` (ground-truth counters/windows, both backends).
    meta: dict = field(default_factory=dict)


@dataclass
class SharedProfile:
    """A worker-side view of one published plane: the shared trace plus
    the reconstructed ground truth, pinning whatever OS resource backs
    the arrays (shm segment or mmap) for as long as it is referenced."""

    trace: ColumnarTrace
    ground_truth: GroundTruth
    #: Objects that must stay alive while the views are in use.
    resources: tuple = ()

    def close(self) -> None:
        """Release the backing resources (views become invalid)."""
        for resource in self.resources:
            try:
                resource.close()
            except (BufferError, OSError):
                # Views still outstanding or segment already gone —
                # either way the GC finishes the job later.
                pass


def _truth_meta(truth: GroundTruth) -> dict:
    return {
        "misses_by_site": dict(truth.misses_by_site),
        "latency_by_site": dict(truth.latency_by_site),
        "total_misses": int(truth.total_misses),
        "windows": [
            {
                "t0": w.t0,
                "t1": w.t1,
                "misses_by_site": dict(w.misses_by_site),
            }
            for w in truth.windows
        ],
    }


def _truth_from_meta(
    meta: dict, addresses: np.ndarray, times: np.ndarray
) -> GroundTruth:
    return GroundTruth(
        misses_by_site=dict(meta["misses_by_site"]),
        latency_by_site=dict(meta["latency_by_site"]),
        addresses=addresses,
        times=times,
        total_misses=int(meta["total_misses"]),
        windows=[
            WindowTruth(
                t0=w["t0"],
                t1=w["t1"],
                misses_by_site=dict(w["misses_by_site"]),
            )
            for w in meta["windows"]
        ],
    )


def _untrack(segment: shared_memory.SharedMemory) -> None:
    """Drop a worker-side segment from this process's resource
    tracker, so worker exit does not unlink (or warn about) a segment
    the parent still owns."""
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without registering it for cleanup.

    The publisher's process keeps the only tracker registration; an
    attaching process must not add one (a worker exit would then
    unlink a segment the parent still serves — or at best warn about
    the double unlink).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Python < 3.13: no ``track`` parameter. Unregistering after
        # the fact would also drop the publisher's registration when
        # attaching in-process (tests), so suppress registration for
        # the duration of the attach instead.
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedTracePlane:
    """Parent-side publisher of per-application profiling products.

    Use as a context manager (or call :meth:`close`); every published
    segment/directory is torn down idempotently on exit.
    """

    def __init__(
        self,
        backend: str = BACKEND_SHM,
        directory: str | Path | None = None,
    ) -> None:
        if backend not in BACKENDS:
            raise PlaneError(
                f"unknown plane backend {backend!r}; have {BACKENDS}"
            )
        self.backend = backend
        self._segments: list[shared_memory.SharedMemory] = []
        self._directories: list[Path] = []
        self._root: Path | None = None
        self._owns_root = False
        if backend == BACKEND_MMAP:
            if directory is None:
                self._root = Path(tempfile.mkdtemp(prefix="repro-plane-"))
                self._owns_root = True
            else:
                self._root = Path(directory)
                self._root.mkdir(parents=True, exist_ok=True)
        self.handles: dict[str, PlaneHandle] = {}

    # -- publishing ------------------------------------------------------

    def publish(
        self, key: str, trace: ColumnarTrace, truth: GroundTruth
    ) -> PlaneHandle:
        """Export one application's trace + ground truth; returns the
        (picklable) handle workers attach with."""
        if key in self.handles:
            return self.handles[key]
        arrays = dict(trace._columns())
        arrays["truth_addresses"] = np.ascontiguousarray(
            truth.addresses, dtype=np.uint64
        )
        arrays["truth_times"] = np.ascontiguousarray(
            truth.times, dtype=np.float64
        )
        meta = {
            "header": trace._header_dict(),
            "truth": _truth_meta(truth),
        }
        if self.backend == BACKEND_SHM:
            handle = self._publish_shm(key, arrays, meta)
        else:
            handle = self._publish_mmap(key, trace, truth, meta)
        self.handles[key] = handle
        return handle

    def _publish_shm(
        self, key: str, arrays: dict[str, np.ndarray], meta: dict
    ) -> PlaneHandle:
        columns: list[PlaneColumn] = []
        blobs: dict[str, np.ndarray] = {}
        offset = 0
        for name, arr in arrays.items():
            blob = np.ascontiguousarray(arr)
            blobs[name] = blob
            columns.append(
                PlaneColumn(
                    name=name,
                    dtype=str(blob.dtype),
                    shape=tuple(blob.shape),
                    offset=offset,
                    crc=zlib.crc32(blob.tobytes()),
                )
            )
            offset += blob.nbytes
            offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        segment = shared_memory.SharedMemory(create=True, size=max(1, offset))
        self._segments.append(segment)
        for column in columns:
            view = np.ndarray(
                column.shape,
                dtype=np.dtype(column.dtype),
                buffer=segment.buf,
                offset=column.offset,
            )
            np.copyto(view, blobs[column.name])
        return PlaneHandle(
            key=key,
            backend=BACKEND_SHM,
            location=segment.name,
            total_bytes=offset,
            columns=tuple(columns),
            meta=meta,
        )

    def _publish_mmap(
        self,
        key: str,
        trace: ColumnarTrace,
        truth: GroundTruth,
        meta: dict,
    ) -> PlaneHandle:
        assert self._root is not None
        plane_dir = self._root / key[:24]
        trace.save_dir(plane_dir / "trace")
        total = sum(
            f.stat().st_size for f in (plane_dir / "trace").iterdir()
        )
        for name in _TRUTH_COLUMNS:
            source = getattr(truth, name.removeprefix("truth_"))
            blob = np.ascontiguousarray(source, dtype=_TRUTH_DTYPES[name])
            buf = io.BytesIO()
            np.save(buf, blob)
            atomic_write_bytes(plane_dir / f"{name}.npy", buf.getvalue())
            total += blob.nbytes
        self._directories.append(plane_dir)
        return PlaneHandle(
            key=key,
            backend=BACKEND_MMAP,
            location=str(plane_dir),
            total_bytes=total,
            columns=(),
            meta=meta,
        )

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Unlink every published segment/directory. Idempotent, and
        tolerant of segments that already disappeared (a previous
        close, or an external reaper) — the manual ``unregister`` in
        that path is what keeps the resource tracker from warning
        about a double unlink at interpreter exit."""
        segments, self._segments = self._segments, []
        for segment in segments:
            try:
                segment.close()
            except (BufferError, OSError):
                pass
            try:
                segment.unlink()
            except FileNotFoundError:
                _untrack(segment)
            except OSError:
                pass
        directories, self._directories = self._directories, []
        if self._owns_root and self._root is not None:
            shutil.rmtree(self._root, ignore_errors=True)
            self._root = None
        else:
            for directory in directories:
                shutil.rmtree(directory, ignore_errors=True)

    def __enter__(self) -> "SharedTracePlane":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


# -- worker side -----------------------------------------------------------


def attach_plane(handle: PlaneHandle) -> SharedProfile:
    """Attach a published plane read-only; zero copies either backend.

    Raises :class:`PlaneError` — and only :class:`PlaneError` — when
    the plane is missing, torn, truncated, or fails its checksums;
    callers fall back to private materialisation.
    """
    try:
        if handle.backend == BACKEND_SHM:
            return _attach_shm(handle)
        if handle.backend == BACKEND_MMAP:
            return _attach_mmap(handle)
        raise PlaneError(f"unknown plane backend {handle.backend!r}")
    except PlaneError:
        raise
    except (OSError, ValueError, KeyError, TypeError, TraceError) as exc:
        raise PlaneError(
            f"plane {handle.key[:12]} unavailable: {exc}"
        ) from exc


def _attach_shm(handle: PlaneHandle) -> SharedProfile:
    try:
        segment = _attach_segment(handle.location)
    except FileNotFoundError as exc:
        raise PlaneError(
            f"plane segment {handle.location} is gone: {exc}"
        ) from exc
    if segment.size < handle.total_bytes:
        segment.close()
        raise PlaneError(
            f"plane segment {handle.location} truncated "
            f"({segment.size} < {handle.total_bytes} bytes)"
        )
    views: dict[str, np.ndarray] = {}
    for column in handle.columns:
        view = np.ndarray(
            column.shape,
            dtype=np.dtype(column.dtype),
            buffer=segment.buf,
            offset=column.offset,
        )
        if zlib.crc32(view.tobytes()) != column.crc:
            del view
            segment.close()
            raise PlaneError(
                f"plane segment {handle.location}:{column.name} "
                "failed its checksum (torn plane)"
            )
        view.flags.writeable = False
        views[column.name] = view
    trace = ColumnarTrace.from_header_and_columns(
        handle.meta["header"],
        {name: views[name] for name in views if name not in _TRUTH_COLUMNS},
    )
    truth = _truth_from_meta(
        handle.meta["truth"],
        views["truth_addresses"],
        views["truth_times"],
    )
    return SharedProfile(trace=trace, ground_truth=truth, resources=(segment,))


def _attach_mmap(handle: PlaneHandle) -> SharedProfile:
    plane_dir = Path(handle.location)
    trace = ColumnarTrace.load(plane_dir / "trace", mmap=True)
    truth_arrays = {}
    for name in _TRUTH_COLUMNS:
        arr = np.load(
            plane_dir / f"{name}.npy", mmap_mode="r", allow_pickle=False
        )
        truth_arrays[name] = arr.astype(_TRUTH_DTYPES[name], copy=False)
    truth = _truth_from_meta(
        handle.meta["truth"],
        truth_arrays["truth_addresses"],
        truth_arrays["truth_times"],
    )
    return SharedProfile(trace=trace, ground_truth=truth, resources=())
