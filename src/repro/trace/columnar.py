"""Columnar (structure-of-arrays) trace view and binary format.

The JSONL trace is the interchange format: self-describing, greppable,
salvageable line by line. It is also the analysis bottleneck — loading
re-parses and re-checksums every line, and attribution then walks a
Python list of dataclass events. :class:`ColumnarTrace` is the same
information content laid out for array kernels: one NumPy column per
field (time/kind/rank/address/size/latency) over *all* events, with
the per-event variable-width payloads (allocation call-stacks, phase
function names, allocator names) interned into side tables referenced
by integer id. Sample-heavy traces — the paper's shape: a few thousand
allocation events under hundreds of thousands of PEBS samples — become
a handful of dense arrays the vectorised attribution kernel
(:mod:`repro.analysis.vectorattr`) consumes without any per-event
Python work.

Round-trips are lossless in both directions
(:meth:`ColumnarTrace.from_tracefile` / :meth:`to_tracefile`), so the
columnar form is a *view* discipline, not a fork of the format.

On disk the trace has two containers with identical information and
identical validation. The default is one ``.npz`` member archive: the
event columns, the static-variable columns, a JSON ``header`` member
carrying the scalars and interned tables, and a JSON ``manifest``
member with a CRC-32 per member. The second (:meth:`ColumnarTrace.
save_dir`) is the *uncompressed directory container* — one plain
``.npy`` file per column plus ``header.json``/``manifest.json`` — the
mmap-able variant the shared trace plane (:mod:`repro.trace.shared`)
builds on, since zip-packed ``np.savez`` members cannot be
memory-mapped. ``load(..., mmap=True)`` hands out read-only
memory-mapped columns from a directory container; the page cache then
shares one physical copy across every process on the host.

Like the JSONL path, loads are strict by default (first damaged member
raises :class:`~repro.errors.TraceError`) and ``salvage=True``
recovers what it can, attaching a
:class:`~repro.trace.tracefile.SalvageReport`: a damaged *latency*
column degrades to latency-less samples, damaged event columns drop
the events but keep statics and metadata, and only a damaged header or
manifest is fatal. Writes are atomic (temp file + rename + fsync).
"""

from __future__ import annotations

import io
import json
import zipfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import TraceError
from repro.ioutil import atomic_write_bytes
from repro.runtime.callstack import CallStack, Frame
from repro.trace.events import (
    AllocEvent,
    FreeEvent,
    PhaseEvent,
    SampleEvent,
    StaticVarRecord,
)
from repro.trace.tracefile import SalvageReport, TraceFile

#: Event-kind codes of the ``kinds`` column.
KIND_ALLOC = 0
KIND_FREE = 1
KIND_SAMPLE = 2
KIND_PHASE = 3

#: ``latencies`` value for samples without a latency (and non-samples).
NO_LATENCY = -1

_SCHEMA = "repro-columnar/1"

#: JSON member file names of the uncompressed directory container.
_DIR_HEADER = "header.json"
_DIR_MANIFEST = "manifest.json"

#: Event columns that must all be intact for events to be recovered.
_CORE_COLUMNS = (
    "times",
    "kinds",
    "event_ranks",
    "addresses",
    "sizes",
    "aux",
    "allocator_ids",
)
_STATIC_COLUMNS = ("static_ranks", "static_addresses", "static_sizes")

_COLUMN_DTYPES = {
    "times": np.float64,
    "kinds": np.uint8,
    "event_ranks": np.int32,
    "addresses": np.int64,
    "sizes": np.int64,
    "latencies": np.int64,
    "aux": np.int32,
    "allocator_ids": np.int32,
    "static_ranks": np.int32,
    "static_addresses": np.int64,
    "static_sizes": np.int64,
}


def _empty(name: str) -> np.ndarray:
    return np.empty(0, dtype=_COLUMN_DTYPES[name])


@dataclass
class ColumnarTrace:
    """Structure-of-arrays twin of :class:`~repro.trace.tracefile.TraceFile`.

    Event order is the trace's own order (the tracer appends in time
    order; attribution re-sorts by time/priority either way). ``aux``
    holds the interned call-stack id for allocations and the interned
    function id for phase events (``-1`` elsewhere); ``allocator_ids``
    the interned allocator name for allocations; ``latencies`` the
    sampled access cost with :data:`NO_LATENCY` meaning "not recorded".
    """

    application: str = ""
    ranks: int = 1
    sampling_period: int = 1
    metadata: dict = field(default_factory=dict)

    times: np.ndarray = field(default_factory=lambda: _empty("times"))
    kinds: np.ndarray = field(default_factory=lambda: _empty("kinds"))
    event_ranks: np.ndarray = field(
        default_factory=lambda: _empty("event_ranks")
    )
    addresses: np.ndarray = field(default_factory=lambda: _empty("addresses"))
    sizes: np.ndarray = field(default_factory=lambda: _empty("sizes"))
    latencies: np.ndarray = field(default_factory=lambda: _empty("latencies"))
    aux: np.ndarray = field(default_factory=lambda: _empty("aux"))
    allocator_ids: np.ndarray = field(
        default_factory=lambda: _empty("allocator_ids")
    )

    #: Interned side tables.
    callstacks: tuple[CallStack, ...] = ()
    functions: tuple[str, ...] = ()
    allocators: tuple[str, ...] = ()

    #: Static variables, columnar too.
    static_names: tuple[str, ...] = ()
    static_ranks: np.ndarray = field(
        default_factory=lambda: _empty("static_ranks")
    )
    static_addresses: np.ndarray = field(
        default_factory=lambda: _empty("static_addresses")
    )
    static_sizes: np.ndarray = field(
        default_factory=lambda: _empty("static_sizes")
    )

    #: Populated by ``load(salvage=True)``; None on clean/strict loads.
    salvage: SalvageReport | None = field(
        default=None, compare=False, repr=False
    )

    # -- shape ---------------------------------------------------------------

    @property
    def n_events(self) -> int:
        return int(self.times.size)

    @property
    def n_statics(self) -> int:
        return len(self.static_names)

    @property
    def n_samples(self) -> int:
        return int(np.count_nonzero(self.kinds == KIND_SAMPLE))

    @property
    def n_allocs(self) -> int:
        return int(np.count_nonzero(self.kinds == KIND_ALLOC))

    @property
    def duration(self) -> float:
        if self.times.size == 0:
            return 0.0
        return float(self.times.max())

    def select(self, mask: np.ndarray) -> "ColumnarTrace":
        """New trace keeping only the events where ``mask`` is True.

        Side tables, statics and metadata are shared/copied whole —
        interned ids stay valid, so this is the columnar analogue of
        the Paramedir narrowing copy.
        """
        mask = np.asarray(mask, dtype=bool)
        return ColumnarTrace(
            application=self.application,
            ranks=self.ranks,
            sampling_period=self.sampling_period,
            metadata=dict(self.metadata),
            times=self.times[mask],
            kinds=self.kinds[mask],
            event_ranks=self.event_ranks[mask],
            addresses=self.addresses[mask],
            sizes=self.sizes[mask],
            latencies=self.latencies[mask],
            aux=self.aux[mask],
            allocator_ids=self.allocator_ids[mask],
            callstacks=self.callstacks,
            functions=self.functions,
            allocators=self.allocators,
            static_names=self.static_names,
            static_ranks=self.static_ranks,
            static_addresses=self.static_addresses,
            static_sizes=self.static_sizes,
        )

    # -- conversion ----------------------------------------------------------

    @classmethod
    def from_tracefile(cls, trace: TraceFile) -> "ColumnarTrace":
        """Columnarise ``trace`` in one pass (lossless)."""
        n = len(trace.events)
        times = np.empty(n, dtype=np.float64)
        kinds = np.empty(n, dtype=np.uint8)
        event_ranks = np.empty(n, dtype=np.int32)
        addresses = np.zeros(n, dtype=np.int64)
        sizes = np.zeros(n, dtype=np.int64)
        latencies = np.full(n, NO_LATENCY, dtype=np.int64)
        aux = np.full(n, -1, dtype=np.int32)
        allocator_ids = np.full(n, -1, dtype=np.int32)

        cs_ids: dict[CallStack, int] = {}
        fn_ids: dict[str, int] = {}
        al_ids: dict[str, int] = {}

        for i, event in enumerate(trace.events):
            times[i] = event.time
            event_ranks[i] = event.rank
            if isinstance(event, AllocEvent):
                kinds[i] = KIND_ALLOC
                addresses[i] = event.address
                sizes[i] = event.size
                aux[i] = cs_ids.setdefault(event.callstack, len(cs_ids))
                allocator_ids[i] = al_ids.setdefault(
                    event.allocator, len(al_ids)
                )
            elif isinstance(event, FreeEvent):
                kinds[i] = KIND_FREE
                addresses[i] = event.address
            elif isinstance(event, SampleEvent):
                kinds[i] = KIND_SAMPLE
                addresses[i] = event.address
                if event.latency_cycles is not None:
                    latencies[i] = event.latency_cycles
            elif isinstance(event, PhaseEvent):
                kinds[i] = KIND_PHASE
                aux[i] = fn_ids.setdefault(event.function, len(fn_ids))
            else:
                raise TraceError(f"unknown event type {type(event).__name__}")

        statics = trace.statics
        return cls(
            application=trace.application,
            ranks=trace.ranks,
            sampling_period=trace.sampling_period,
            metadata=dict(trace.metadata),
            times=times,
            kinds=kinds,
            event_ranks=event_ranks,
            addresses=addresses,
            sizes=sizes,
            latencies=latencies,
            aux=aux,
            allocator_ids=allocator_ids,
            callstacks=tuple(cs_ids),
            functions=tuple(fn_ids),
            allocators=tuple(al_ids),
            static_names=tuple(s.name for s in statics),
            static_ranks=np.fromiter(
                (s.rank for s in statics), dtype=np.int32, count=len(statics)
            ),
            static_addresses=np.fromiter(
                (s.address for s in statics),
                dtype=np.int64,
                count=len(statics),
            ),
            static_sizes=np.fromiter(
                (s.size for s in statics), dtype=np.int64, count=len(statics)
            ),
        )

    def to_tracefile(self) -> TraceFile:
        """Rebuild the row-oriented trace (lossless inverse)."""
        trace = TraceFile(
            application=self.application,
            ranks=self.ranks,
            sampling_period=self.sampling_period,
            metadata=dict(self.metadata),
        )
        trace.statics = [
            StaticVarRecord(
                name=self.static_names[i],
                rank=int(self.static_ranks[i]),
                address=int(self.static_addresses[i]),
                size=int(self.static_sizes[i]),
            )
            for i in range(self.n_statics)
        ]
        times = self.times.tolist()
        kinds = self.kinds.tolist()
        ranks = self.event_ranks.tolist()
        addresses = self.addresses.tolist()
        sizes = self.sizes.tolist()
        latencies = self.latencies.tolist()
        aux = self.aux.tolist()
        allocator_ids = self.allocator_ids.tolist()
        events = trace.events
        for i in range(self.n_events):
            kind = kinds[i]
            if kind == KIND_ALLOC:
                events.append(
                    AllocEvent(
                        time=times[i],
                        rank=ranks[i],
                        address=addresses[i],
                        size=sizes[i],
                        callstack=self.callstacks[aux[i]],
                        allocator=self.allocators[allocator_ids[i]],
                    )
                )
            elif kind == KIND_FREE:
                events.append(
                    FreeEvent(
                        time=times[i], rank=ranks[i], address=addresses[i]
                    )
                )
            elif kind == KIND_SAMPLE:
                lat = latencies[i]
                events.append(
                    SampleEvent(
                        time=times[i],
                        rank=ranks[i],
                        address=addresses[i],
                        latency_cycles=None if lat == NO_LATENCY else lat,
                    )
                )
            elif kind == KIND_PHASE:
                events.append(
                    PhaseEvent(
                        time=times[i],
                        rank=ranks[i],
                        function=self.functions[aux[i]],
                    )
                )
            else:
                raise TraceError(f"unknown event kind code {kind}")
        trace.invalidate_caches()
        return trace

    # -- persistence ---------------------------------------------------------

    def _header_dict(self) -> dict:
        return {
            "schema": _SCHEMA,
            "application": self.application,
            "ranks": self.ranks,
            "sampling_period": self.sampling_period,
            "metadata": self.metadata,
            "n_events": self.n_events,
            "n_statics": self.n_statics,
            "callstacks": [
                [[f.module, f.function, f.file, f.line] for f in cs]
                for cs in self.callstacks
            ],
            "functions": list(self.functions),
            "allocators": list(self.allocators),
            "static_names": list(self.static_names),
        }

    def _columns(self) -> dict[str, np.ndarray]:
        return {
            "times": self.times,
            "kinds": self.kinds,
            "event_ranks": self.event_ranks,
            "addresses": self.addresses,
            "sizes": self.sizes,
            "latencies": self.latencies,
            "aux": self.aux,
            "allocator_ids": self.allocator_ids,
            "static_ranks": self.static_ranks,
            "static_addresses": self.static_addresses,
            "static_sizes": self.static_sizes,
        }

    def to_bytes(self) -> bytes:
        """The full ``.npz`` payload (columns + header + manifest)."""
        members: dict[str, np.ndarray] = dict(self._columns())
        header = json.dumps(
            self._header_dict(), sort_keys=True, separators=(",", ":")
        ).encode()
        members["header"] = np.frombuffer(header, dtype=np.uint8)
        crcs = {
            name: zlib.crc32(np.ascontiguousarray(arr).tobytes())
            for name, arr in members.items()
        }
        manifest = json.dumps(
            {"schema": _SCHEMA, "crc": crcs},
            sort_keys=True,
            separators=(",", ":"),
        ).encode()
        members["manifest"] = np.frombuffer(manifest, dtype=np.uint8)
        buf = io.BytesIO()
        np.savez(buf, **members)
        return buf.getvalue()

    def save(self, path: str | Path) -> None:
        """Write the binary trace atomically (temp file + rename)."""
        atomic_write_bytes(path, self.to_bytes())

    def save_dir(self, path: str | Path) -> None:
        """Write the uncompressed directory container (mmap-able).

        Same information as :meth:`save`, laid out as one plain
        ``.npy`` file per column plus ``header.json`` and
        ``manifest.json``, so :meth:`load` with ``mmap=True`` can hand
        out read-only memory-mapped columns (zip-packed ``.npz``
        members cannot be memory-mapped). Each member write is atomic
        and the manifest lands last, so a torn writer leaves a
        container the loader rejects (strict) or salvages — never one
        it silently misreads.
        """
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        header = json.dumps(
            self._header_dict(), sort_keys=True, separators=(",", ":")
        ).encode()
        columns = self._columns()
        crcs = {
            name: zlib.crc32(np.ascontiguousarray(arr).tobytes())
            for name, arr in columns.items()
        }
        crcs["header"] = zlib.crc32(header)
        manifest = json.dumps(
            {"schema": _SCHEMA, "crc": crcs},
            sort_keys=True,
            separators=(",", ":"),
        ).encode()
        for name, arr in columns.items():
            buf = io.BytesIO()
            np.save(buf, np.ascontiguousarray(arr))
            atomic_write_bytes(path / f"{name}.npy", buf.getvalue())
        atomic_write_bytes(path / _DIR_HEADER, header)
        atomic_write_bytes(path / _DIR_MANIFEST, manifest)

    @classmethod
    def from_header_and_columns(
        cls, header: dict, columns: dict[str, np.ndarray]
    ) -> "ColumnarTrace":
        """Assemble a trace from a decoded header dict plus one array
        per column (the shared trace plane's attach path; the caller
        has already verified checksums)."""
        callstacks = tuple(
            CallStack(
                frames=tuple(
                    Frame(module=m, function=fn, file=fi, line=ln)
                    for m, fn, fi, ln in frames
                )
            )
            for frames in header.get("callstacks", [])
        )
        return cls(
            application=header.get("application", ""),
            ranks=int(header.get("ranks", 1)),
            sampling_period=int(header.get("sampling_period", 1)),
            metadata=header.get("metadata", {}),
            times=columns["times"],
            kinds=columns["kinds"],
            event_ranks=columns["event_ranks"],
            addresses=columns["addresses"],
            sizes=columns["sizes"],
            latencies=columns["latencies"],
            aux=columns["aux"],
            allocator_ids=columns["allocator_ids"],
            callstacks=callstacks,
            functions=tuple(header.get("functions", [])),
            allocators=tuple(header.get("allocators", [])),
            static_names=tuple(header.get("static_names", [])),
            static_ranks=columns["static_ranks"],
            static_addresses=columns["static_addresses"],
            static_sizes=columns["static_sizes"],
        )

    @staticmethod
    def _read_dir_members(path: Path, mmap: bool) -> dict[str, np.ndarray]:
        """Read the directory container's members into the same shape
        the archive loader produces. Missing or unreadable members are
        simply absent — the shared validation body then applies the
        identical strict/salvage rules for both containers."""
        members: dict[str, np.ndarray] = {}
        for name in _COLUMN_DTYPES:
            member = path / f"{name}.npy"
            try:
                members[name] = np.load(
                    member,
                    mmap_mode="r" if mmap else None,
                    allow_pickle=False,
                )
            except (OSError, ValueError):
                continue
        for filename in (_DIR_HEADER, _DIR_MANIFEST):
            try:
                data = (path / filename).read_bytes()
            except OSError:
                continue
            members[filename.removesuffix(".json")] = np.frombuffer(
                data, dtype=np.uint8
            )
        return members

    @classmethod
    def load(
        cls,
        path: str | Path,
        salvage: bool = False,
        mmap: bool = False,
    ) -> "ColumnarTrace":
        """Read a binary columnar trace back (either container).

        Strict mode (default) raises :class:`TraceError` on any
        missing, checksum-failing or mis-shaped member. ``salvage=True``
        degrades instead: a damaged ``latencies`` column is replaced by
        the no-latency sentinel, damaged event columns drop all events,
        damaged static columns drop the statics — each recorded in the
        attached :class:`SalvageReport`. A damaged/missing header or
        manifest is fatal either way, since nothing can be attributed
        without the interned tables.

        ``mmap=True`` (directory container only) returns read-only
        memory-mapped columns instead of eager copies: loads share one
        page-cache copy per host and writes through the arrays raise.
        Checksums are verified either way.
        """
        path = Path(path)
        if path.is_dir():
            members = cls._read_dir_members(path, mmap=mmap)
        else:
            if mmap:
                raise TraceError(
                    f"{path}: mmap=True requires the directory "
                    "container (save_dir); zip-packed .npz members "
                    "cannot be memory-mapped"
                )
            try:
                with np.load(path, allow_pickle=False) as npz:
                    members = {name: npz[name] for name in npz.files}
            except (OSError, ValueError, zipfile.BadZipFile, KeyError) as exc:
                raise TraceError(f"{path}: unreadable columnar trace: {exc}")
        try:
            manifest = json.loads(bytes(members.pop("manifest").tobytes()))
            crcs = dict(manifest["crc"])
        except (KeyError, ValueError, AttributeError) as exc:
            raise TraceError(f"{path}: missing/corrupt manifest: {exc}")
        if manifest.get("schema") != _SCHEMA:
            raise TraceError(
                f"{path}: unsupported schema {manifest.get('schema')!r}"
            )

        damage: list[str] = []

        def damaged_member(name: str, reason: str) -> None:
            message = f"{path}:{name}: {reason}"
            if not salvage:
                raise TraceError(message)
            damage.append(message)

        def intact(name: str) -> np.ndarray | None:
            """The member iff present with a matching checksum."""
            arr = members.get(name)
            if arr is None:
                damaged_member(name, "member missing")
                return None
            if name not in crcs:
                damaged_member(name, "member not covered by the manifest")
                return None
            if zlib.crc32(np.ascontiguousarray(arr).tobytes()) != crcs[name]:
                damaged_member(name, "checksum mismatch (corrupt member)")
                return None
            return arr

        header_arr = members.get("header")
        if (
            header_arr is None
            or "header" not in crcs
            or zlib.crc32(np.ascontiguousarray(header_arr).tobytes())
            != crcs["header"]
        ):
            raise TraceError(f"{path}: header missing or corrupt")
        try:
            header = json.loads(bytes(header_arr.tobytes()))
        except ValueError as exc:
            raise TraceError(f"{path}: undecodable header: {exc}")
        n_events = int(header.get("n_events", 0))
        n_statics = int(header.get("n_statics", 0))

        callstacks = tuple(
            CallStack(
                frames=tuple(
                    Frame(module=m, function=fn, file=fi, line=ln)
                    for m, fn, fi, ln in frames
                )
            )
            for frames in header.get("callstacks", [])
        )

        columns: dict[str, np.ndarray] = {}
        events_lost = False
        for name in _CORE_COLUMNS:
            arr = intact(name)
            if arr is not None and arr.shape != (n_events,):
                damaged_member(
                    name,
                    f"expected {n_events} entries, found {arr.shape}",
                )
                arr = None
            if arr is None:
                events_lost = True
            else:
                columns[name] = arr.astype(_COLUMN_DTYPES[name], copy=False)
        latencies = intact("latencies")
        latency_lost = False
        if latencies is not None and latencies.shape != (n_events,):
            damaged_member(
                "latencies",
                f"expected {n_events} entries, found {latencies.shape}",
            )
            latencies = None
        if latencies is None:
            latency_lost = True
            latencies = np.full(n_events, NO_LATENCY, dtype=np.int64)
        if events_lost:
            # Salvage mode: drop every event, keep what the header and
            # the static columns still describe.
            n_events = 0
            columns = {name: _empty(name) for name in _CORE_COLUMNS}
            latencies = _empty("latencies")

        statics_lost = False
        static_cols: dict[str, np.ndarray] = {}
        for name in _STATIC_COLUMNS:
            arr = intact(name)
            if arr is not None and arr.shape != (n_statics,):
                damaged_member(
                    name,
                    f"expected {n_statics} entries, found {arr.shape}",
                )
                arr = None
            if arr is None:
                statics_lost = True
            else:
                static_cols[name] = arr.astype(
                    _COLUMN_DTYPES[name], copy=False
                )
        static_names = tuple(header.get("static_names", []))
        if statics_lost:
            static_names = ()
            static_cols = {name: _empty(name) for name in _STATIC_COLUMNS}

        trace = cls(
            application=header.get("application", ""),
            ranks=int(header.get("ranks", 1)),
            sampling_period=int(header.get("sampling_period", 1)),
            metadata=header.get("metadata", {}),
            times=columns["times"],
            kinds=columns["kinds"],
            event_ranks=columns["event_ranks"],
            addresses=columns["addresses"],
            sizes=columns["sizes"],
            latencies=latencies.astype(np.int64, copy=False),
            aux=columns["aux"],
            allocator_ids=columns["allocator_ids"],
            callstacks=callstacks,
            functions=tuple(header.get("functions", [])),
            allocators=tuple(header.get("allocators", [])),
            static_names=static_names,
            static_ranks=static_cols["static_ranks"],
            static_addresses=static_cols["static_addresses"],
            static_sizes=static_cols["static_sizes"],
        )
        if salvage:
            lost = 0
            if events_lost:
                lost += int(header.get("n_events", 0))
            elif latency_lost:
                # Samples survive without their latency column; count
                # nothing lost but keep the detail strings.
                pass
            if statics_lost:
                lost += n_statics
            trace.salvage = SalvageReport(
                recovered_records=trace.n_events + trace.n_statics,
                damaged_lines=len(damage),
                lost_records=lost,
                details=tuple(damage),
            )
        return trace


def is_columnar_dir(path: str | Path) -> bool:
    """Sniff whether ``path`` is an uncompressed directory container."""
    path = Path(path)
    try:
        return path.is_dir() and (path / _DIR_MANIFEST).is_file()
    except OSError:
        return False


def is_columnar_trace(path: str | Path) -> bool:
    """Sniff whether ``path`` holds a binary columnar trace.

    ``.npz`` archives are zip files; the JSONL format never starts
    with the zip magic, so four bytes decide. A directory holding a
    ``manifest.json`` is the uncompressed container.
    """
    if is_columnar_dir(path):
        return True
    try:
        with open(path, "rb") as fh:
            return fh.read(4) == b"PK\x03\x04"
    except OSError:
        return False


def load_any_trace(
    path: str | Path, salvage: bool = False, mmap: bool = False
) -> "TraceFile | ColumnarTrace":
    """Load any trace container, deciding by content, not extension."""
    if is_columnar_trace(path):
        return ColumnarTrace.load(path, salvage=salvage, mmap=mmap)
    if mmap:
        raise TraceError(
            f"{path}: mmap=True requires a columnar directory container"
        )
    return TraceFile.load(path, salvage=salvage)
