"""Trace-file container with JSONL round-trip.

The real framework persists Paraver trace-files on disk between stage
1 (Extrae) and stage 2 (Paramedir); the simulated trace does the same
through JSON-lines so each stage can run in a separate process if
desired.

Robustness: every record line carries a CRC-32 over its canonical
payload and the header records how many records follow, so
:meth:`TraceFile.load` can tell a clean trace from a damaged one.
Strict loads (the default) raise :class:`~repro.errors.TraceError` on
the first damaged line; ``salvage=True`` recovers every intact record
and reports what was lost in :attr:`TraceFile.salvage`. Writes are
atomic (temp file + rename) so a crashed writer never leaves a
half-written trace behind the next stage's back.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Union

from repro.errors import TraceError
from repro.ioutil import atomic_write_text
from repro.trace.events import (
    AllocEvent,
    FreeEvent,
    PhaseEvent,
    SampleEvent,
    StaticVarRecord,
)

TraceEvent = Union[AllocEvent, FreeEvent, SampleEvent, PhaseEvent]

_EVENT_TYPES = {
    "alloc": AllocEvent,
    "free": FreeEvent,
    "sample": SampleEvent,
    "phase": PhaseEvent,
}


def _checksummed_line(record: dict) -> str:
    """One JSONL line with a ``crc`` field over the canonical payload."""
    canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return json.dumps(
        {**record, "crc": zlib.crc32(canonical.encode())},
        sort_keys=True,
        separators=(",", ":"),
    )


def _verify_crc(data: dict) -> bool:
    """True iff ``data`` has no crc (legacy record) or a matching one."""
    crc = data.pop("crc", None)
    if crc is None:
        return True
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode()) == crc


@dataclass(frozen=True, slots=True)
class SalvageReport:
    """What a ``salvage=True`` load recovered and what it lost."""

    #: Records recovered intact (statics + events).
    recovered_records: int = 0
    #: Lines that failed to parse or failed their checksum.
    damaged_lines: int = 0
    #: Records lost: damaged lines plus records the header promised
    #: but the file no longer contains (truncation).
    lost_records: int = 0
    #: ``path:lineno: reason`` strings, one per damaged line.
    details: tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return self.lost_records == 0 and self.damaged_lines == 0


@dataclass
class TraceFile:
    """An ordered collection of trace events plus run metadata."""

    application: str = ""
    ranks: int = 1
    sampling_period: int = 1
    events: list[TraceEvent] = field(default_factory=list)
    statics: list[StaticVarRecord] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)
    #: Populated by ``load(salvage=True)``; None on clean/strict loads.
    salvage: SalvageReport | None = field(
        default=None, compare=False, repr=False
    )

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    def extend(self, events: list[TraceEvent]) -> None:
        self.events.extend(events)

    def sorted_events(self) -> list[TraceEvent]:
        """Events in time order (stable for equal timestamps)."""
        return sorted(self.events, key=lambda e: e.time)

    def iter_type(self, event_type: type) -> Iterator[TraceEvent]:
        return (e for e in self.events if isinstance(e, event_type))

    @property
    def alloc_events(self) -> list[AllocEvent]:
        return [e for e in self.events if isinstance(e, AllocEvent)]

    @property
    def free_events(self) -> list[FreeEvent]:
        return [e for e in self.events if isinstance(e, FreeEvent)]

    @property
    def sample_events(self) -> list[SampleEvent]:
        return [e for e in self.events if isinstance(e, SampleEvent)]

    @property
    def phase_events(self) -> list[PhaseEvent]:
        return [e for e in self.events if isinstance(e, PhaseEvent)]

    @property
    def duration(self) -> float:
        if not self.events:
            return 0.0
        return max(e.time for e in self.events)

    # -- persistence ---------------------------------------------------------

    def to_jsonl(self) -> str:
        """The full checksummed JSONL payload (header + records)."""
        header = {
            "type": "header",
            "application": self.application,
            "ranks": self.ranks,
            "sampling_period": self.sampling_period,
            "metadata": self.metadata,
            "n_records": len(self.statics) + len(self.events),
        }
        lines = [_checksummed_line(header)]
        for static in self.statics:
            lines.append(_checksummed_line(static.to_dict()))
        for event in self.events:
            lines.append(_checksummed_line(event.to_dict()))
        return "\n".join(lines) + "\n"

    def save(self, path: str | Path) -> None:
        """Write as JSON lines: a checksummed header record, then one
        checksummed event per line — atomically (temp file + rename)."""
        atomic_write_text(path, self.to_jsonl())

    @classmethod
    def load(cls, path: str | Path, salvage: bool = False) -> "TraceFile":
        """Read a trace back.

        Strict mode (default) raises :class:`TraceError` on the first
        malformed, checksum-failing or unknown record. ``salvage=True``
        recovers every intact record, skips damaged lines, and attaches
        a :class:`SalvageReport` (damage counts + per-line reasons) as
        :attr:`salvage`; only a missing/damaged header is fatal, since
        nothing can be attributed without one.
        """
        path = Path(path)
        trace: TraceFile | None = None
        expected_records: int | None = None
        recovered = 0
        damage: list[str] = []

        def damaged(lineno: int, reason: str) -> None:
            message = f"{path}:{lineno}: {reason}"
            if not salvage:
                raise TraceError(message)
            damage.append(message)

        # Binary split: a bit-flipped line may not even decode as
        # UTF-8, and one bad line must not poison its neighbours.
        with path.open("rb") as fh:
            for lineno, raw in enumerate(fh, start=1):
                try:
                    line = raw.decode().strip()
                except UnicodeDecodeError as exc:
                    damaged(lineno, f"undecodable bytes: {exc}")
                    continue
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError as exc:
                    damaged(lineno, f"bad JSON: {exc}")
                    continue
                if not isinstance(data, dict):
                    damaged(lineno, "record is not an object")
                    continue
                if not _verify_crc(data):
                    damaged(lineno, "checksum mismatch (corrupt record)")
                    continue
                kind = data.get("type")
                if kind == "header":
                    trace = cls(
                        application=data.get("application", ""),
                        ranks=data.get("ranks", 1),
                        sampling_period=data.get("sampling_period", 1),
                        metadata=data.get("metadata", {}),
                    )
                    expected_records = data.get("n_records")
                    continue
                if trace is None:
                    raise TraceError(f"{path}: first record must be the header")
                try:
                    if kind == "static":
                        trace.statics.append(StaticVarRecord.from_dict(data))
                    elif kind in _EVENT_TYPES:
                        trace.events.append(_EVENT_TYPES[kind].from_dict(data))
                    else:
                        damaged(lineno, f"unknown event {kind!r}")
                        continue
                except (KeyError, TypeError, ValueError) as exc:
                    damaged(lineno, f"malformed {kind} record: {exc}")
                    continue
                recovered += 1
        if trace is None:
            raise TraceError(
                f"{path}: empty trace file"
                if not damage
                else f"{path}: header unrecoverable ({damage[0]})"
            )
        if salvage:
            lost = len(damage)
            if expected_records is not None:
                lost = max(lost, expected_records - recovered)
            trace.salvage = SalvageReport(
                recovered_records=recovered,
                damaged_lines=len(damage),
                lost_records=lost,
                details=tuple(damage),
            )
        elif expected_records is not None and recovered != expected_records:
            raise TraceError(
                f"{path}: header promises {expected_records} records, "
                f"found {recovered} (truncated trace?)"
            )
        return trace
