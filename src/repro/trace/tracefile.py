"""Trace-file container with JSONL round-trip.

The real framework persists Paraver trace-files on disk between stage
1 (Extrae) and stage 2 (Paramedir); the simulated trace does the same
through JSON-lines so each stage can run in a separate process if
desired.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Union

from repro.errors import TraceError
from repro.trace.events import (
    AllocEvent,
    FreeEvent,
    PhaseEvent,
    SampleEvent,
    StaticVarRecord,
)

TraceEvent = Union[AllocEvent, FreeEvent, SampleEvent, PhaseEvent]

_EVENT_TYPES = {
    "alloc": AllocEvent,
    "free": FreeEvent,
    "sample": SampleEvent,
    "phase": PhaseEvent,
}


@dataclass
class TraceFile:
    """An ordered collection of trace events plus run metadata."""

    application: str = ""
    ranks: int = 1
    sampling_period: int = 1
    events: list[TraceEvent] = field(default_factory=list)
    statics: list[StaticVarRecord] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    def extend(self, events: list[TraceEvent]) -> None:
        self.events.extend(events)

    def sorted_events(self) -> list[TraceEvent]:
        """Events in time order (stable for equal timestamps)."""
        return sorted(self.events, key=lambda e: e.time)

    def iter_type(self, event_type: type) -> Iterator[TraceEvent]:
        return (e for e in self.events if isinstance(e, event_type))

    @property
    def alloc_events(self) -> list[AllocEvent]:
        return [e for e in self.events if isinstance(e, AllocEvent)]

    @property
    def free_events(self) -> list[FreeEvent]:
        return [e for e in self.events if isinstance(e, FreeEvent)]

    @property
    def sample_events(self) -> list[SampleEvent]:
        return [e for e in self.events if isinstance(e, SampleEvent)]

    @property
    def phase_events(self) -> list[PhaseEvent]:
        return [e for e in self.events if isinstance(e, PhaseEvent)]

    @property
    def duration(self) -> float:
        if not self.events:
            return 0.0
        return max(e.time for e in self.events)

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write as JSON lines: a header record, then one event per line."""
        path = Path(path)
        with path.open("w") as fh:
            header = {
                "type": "header",
                "application": self.application,
                "ranks": self.ranks,
                "sampling_period": self.sampling_period,
                "metadata": self.metadata,
            }
            fh.write(json.dumps(header) + "\n")
            for static in self.statics:
                fh.write(json.dumps(static.to_dict()) + "\n")
            for event in self.events:
                fh.write(json.dumps(event.to_dict()) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "TraceFile":
        path = Path(path)
        trace: TraceFile | None = None
        with path.open() as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TraceError(f"{path}:{lineno}: bad JSON: {exc}") from exc
                kind = data.get("type")
                if kind == "header":
                    trace = cls(
                        application=data.get("application", ""),
                        ranks=data.get("ranks", 1),
                        sampling_period=data.get("sampling_period", 1),
                        metadata=data.get("metadata", {}),
                    )
                    continue
                if trace is None:
                    raise TraceError(f"{path}: first record must be the header")
                if kind == "static":
                    trace.statics.append(StaticVarRecord.from_dict(data))
                elif kind in _EVENT_TYPES:
                    trace.events.append(_EVENT_TYPES[kind].from_dict(data))
                else:
                    raise TraceError(f"{path}:{lineno}: unknown event {kind!r}")
        if trace is None:
            raise TraceError(f"{path}: empty trace file")
        return trace
