"""Trace-file container with JSONL round-trip.

The real framework persists Paraver trace-files on disk between stage
1 (Extrae) and stage 2 (Paramedir); the simulated trace does the same
through JSON-lines so each stage can run in a separate process if
desired.

Robustness: every record line carries a CRC-32 over its canonical
payload and the header records how many records follow, so
:meth:`TraceFile.load` can tell a clean trace from a damaged one.
Strict loads (the default) raise :class:`~repro.errors.TraceError` on
the first damaged line; ``salvage=True`` recovers every intact record
and reports what was lost in :attr:`TraceFile.salvage`. Writes are
atomic (temp file + rename) so a crashed writer never leaves a
half-written trace behind the next stage's back.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Union

from repro.errors import TraceError
from repro.ioutil import atomic_writer
from repro.trace.events import (
    AllocEvent,
    FreeEvent,
    PhaseEvent,
    SampleEvent,
    StaticVarRecord,
)

TraceEvent = Union[AllocEvent, FreeEvent, SampleEvent, PhaseEvent]

_EVENT_TYPES = {
    "alloc": AllocEvent,
    "free": FreeEvent,
    "sample": SampleEvent,
    "phase": PhaseEvent,
}


def _checksummed_line(record: dict) -> str:
    """One JSONL line with a ``crc`` field over the canonical payload."""
    canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return json.dumps(
        {**record, "crc": zlib.crc32(canonical.encode())},
        sort_keys=True,
        separators=(",", ":"),
    )


def _verify_crc(data: dict) -> bool:
    """True iff ``data`` has no crc (legacy record) or a matching one."""
    crc = data.pop("crc", None)
    if crc is None:
        return True
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode()) == crc


@dataclass(frozen=True, slots=True)
class SalvageReport:
    """What a ``salvage=True`` load recovered and what it lost."""

    #: Records recovered intact (statics + events).
    recovered_records: int = 0
    #: Lines that failed to parse or failed their checksum.
    damaged_lines: int = 0
    #: Records lost: damaged lines plus records the header promised
    #: but the file no longer contains (truncation).
    lost_records: int = 0
    #: ``path:lineno: reason`` strings, one per damaged line.
    details: tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return self.lost_records == 0 and self.damaged_lines == 0


@dataclass
class TraceFile:
    """An ordered collection of trace events plus run metadata."""

    application: str = ""
    ranks: int = 1
    sampling_period: int = 1
    events: list[TraceEvent] = field(default_factory=list)
    statics: list[StaticVarRecord] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)
    #: Populated by ``load(salvage=True)``; None on clean/strict loads.
    salvage: SalvageReport | None = field(
        default=None, compare=False, repr=False
    )
    #: Cached time-sorted view (plus the event count it was built at,
    #: so direct ``trace.events`` appends are caught too).
    _sorted_cache: list[TraceEvent] | None = field(
        default=None, init=False, compare=False, repr=False
    )
    _sorted_cache_len: int = field(
        default=-1, init=False, compare=False, repr=False
    )

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)
        self.invalidate_caches()

    def extend(self, events: list[TraceEvent]) -> None:
        self.events.extend(events)
        self.invalidate_caches()

    def invalidate_caches(self) -> None:
        """Drop derived views after mutating :attr:`events` directly."""
        self._sorted_cache = None
        self._sorted_cache_len = -1

    def sorted_events(self) -> list[TraceEvent]:
        """Events in time order (stable for equal timestamps).

        Cached between calls; :meth:`append`/:meth:`extend` (or any
        mutation that changes the event count) invalidate the cache.
        The returned list is shared — treat it as read-only.
        """
        if (
            self._sorted_cache is None
            or self._sorted_cache_len != len(self.events)
        ):
            self._sorted_cache = sorted(self.events, key=lambda e: e.time)
            self._sorted_cache_len = len(self.events)
        return self._sorted_cache

    def iter_type(self, event_type: type) -> Iterator[TraceEvent]:
        return (e for e in self.events if isinstance(e, event_type))

    @property
    def alloc_events(self) -> list[AllocEvent]:
        return [e for e in self.events if isinstance(e, AllocEvent)]

    @property
    def free_events(self) -> list[FreeEvent]:
        return [e for e in self.events if isinstance(e, FreeEvent)]

    @property
    def sample_events(self) -> list[SampleEvent]:
        return [e for e in self.events if isinstance(e, SampleEvent)]

    @property
    def phase_events(self) -> list[PhaseEvent]:
        return [e for e in self.events if isinstance(e, PhaseEvent)]

    @property
    def duration(self) -> float:
        if not self.events:
            return 0.0
        return max(e.time for e in self.events)

    # -- persistence ---------------------------------------------------------

    def iter_jsonl_lines(self) -> Iterator[str]:
        """Checksummed JSONL lines (header + records), one at a time."""
        header = {
            "type": "header",
            "application": self.application,
            "ranks": self.ranks,
            "sampling_period": self.sampling_period,
            "metadata": self.metadata,
            "n_records": len(self.statics) + len(self.events),
        }
        yield _checksummed_line(header)
        for static in self.statics:
            yield _checksummed_line(static.to_dict())
        for event in self.events:
            yield _checksummed_line(event.to_dict())

    def to_jsonl(self) -> str:
        """The full checksummed JSONL payload (header + records)."""
        return "\n".join(self.iter_jsonl_lines()) + "\n"

    def save(self, path: str | Path) -> None:
        """Write as JSON lines: a checksummed header record, then one
        checksummed event per line — atomically (temp file + rename).

        Lines are streamed to the temporary file as they are encoded;
        the full multi-hundred-MB payload of a large trace is never
        materialised as one string.
        """
        with atomic_writer(path, "w") as fh:
            for line in self.iter_jsonl_lines():
                fh.write(line)
                fh.write("\n")

    @classmethod
    def load(cls, path: str | Path, salvage: bool = False) -> "TraceFile":
        """Read a trace back.

        Strict mode (default) raises :class:`TraceError` on the first
        malformed, checksum-failing or unknown record. ``salvage=True``
        recovers every intact record, skips damaged lines, and attaches
        a :class:`SalvageReport` (damage counts + per-line reasons) as
        :attr:`salvage`; only a missing/damaged header is fatal, since
        nothing can be attributed without one.
        """
        path = Path(path)
        trace: TraceFile | None = None
        expected_records: int | None = None
        recovered = 0
        damage: list[str] = []

        def damaged(lineno: int, reason: str) -> None:
            message = f"{path}:{lineno}: {reason}"
            if not salvage:
                raise TraceError(message)
            damage.append(message)

        # Binary split: a bit-flipped line may not even decode as
        # UTF-8, and one bad line must not poison its neighbours.
        with path.open("rb") as fh:
            for lineno, raw in enumerate(fh, start=1):
                try:
                    line = raw.decode().strip()
                except UnicodeDecodeError as exc:
                    damaged(lineno, f"undecodable bytes: {exc}")
                    continue
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError as exc:
                    damaged(lineno, f"bad JSON: {exc}")
                    continue
                if not isinstance(data, dict):
                    damaged(lineno, "record is not an object")
                    continue
                if not _verify_crc(data):
                    damaged(lineno, "checksum mismatch (corrupt record)")
                    continue
                kind = data.get("type")
                if kind == "header":
                    trace = cls(
                        application=data.get("application", ""),
                        ranks=data.get("ranks", 1),
                        sampling_period=data.get("sampling_period", 1),
                        metadata=data.get("metadata", {}),
                    )
                    expected_records = data.get("n_records")
                    continue
                if trace is None:
                    raise TraceError(f"{path}: first record must be the header")
                try:
                    if kind == "static":
                        trace.statics.append(StaticVarRecord.from_dict(data))
                    elif kind in _EVENT_TYPES:
                        trace.events.append(_EVENT_TYPES[kind].from_dict(data))
                    else:
                        damaged(lineno, f"unknown event {kind!r}")
                        continue
                except (KeyError, TypeError, ValueError) as exc:
                    damaged(lineno, f"malformed {kind} record: {exc}")
                    continue
                recovered += 1
        if trace is None:
            raise TraceError(
                f"{path}: empty trace file"
                if not damage
                else f"{path}: header unrecoverable ({damage[0]})"
            )
        if salvage:
            lost = len(damage)
            if expected_records is not None:
                lost = max(lost, expected_records - recovered)
            trace.salvage = SalvageReport(
                recovered_records=recovered,
                damaged_lines=len(damage),
                lost_records=lost,
                details=tuple(damage),
            )
        elif expected_records is not None and recovered != expected_records:
            raise TraceError(
                f"{path}: header promises {expected_records} records, "
                f"found {recovered} (truncated trace?)"
            )
        return trace
