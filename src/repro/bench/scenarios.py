"""Fixed-seed address-stream workloads for the kernel benchmarks.

Three shapes cover the problem space the simulators actually see:

* ``hotcold`` — the paper's own premise: a small set of hot objects
  receives most of the traffic (what makes placement worth doing).
  This is the representative stream the regression gate runs on.
* ``uniform`` — no locality at all; the adversarial case for the
  vectorised LRU kernel (nothing to elide, maximum rounds).
* ``strided`` — sequential scans at element granularity, the STREAM-
  like shape where consecutive accesses share cache lines.

Every generator is deterministic in ``seed`` so two benchmark runs on
the same machine time identical work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigError
from repro.units import KIB, MIB


@dataclass(frozen=True, slots=True)
class StreamScenario:
    """One named workload shape."""

    name: str
    description: str
    make: Callable[[int, int], np.ndarray]


def _uniform(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 64 * MIB, size=n, dtype=np.int64).astype(np.uint64)


def _hotcold(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    hot = rng.integers(0, 256 * KIB, size=n, dtype=np.int64)
    cold = rng.integers(0, 512 * MIB, size=n, dtype=np.int64)
    return np.where(rng.random(n) < 0.95, hot, cold).astype(np.uint64)


def _strided(n: int, seed: int) -> np.ndarray:
    # Three interleaved 8-byte-element scans (triad-like), offset so
    # they map to different lines; the seed rotates the phase.
    base = np.arange(n, dtype=np.uint64) * np.uint64(8)
    lane = np.arange(n, dtype=np.uint64) % np.uint64(3)
    out = base + lane * np.uint64(16 * MIB)
    return np.roll(out, seed % max(n, 1))


SCENARIOS: dict[str, StreamScenario] = {
    s.name: s
    for s in (
        StreamScenario(
            "hotcold",
            "95% of accesses to a 256 KiB hot region (object locality)",
            _hotcold,
        ),
        StreamScenario(
            "uniform",
            "uniform random over 64 MiB (adversarial: no locality)",
            _uniform,
        ),
        StreamScenario(
            "strided",
            "three interleaved sequential 8-byte scans (STREAM-like)",
            _strided,
        ),
    )
}


def make_stream(scenario: str, n: int, seed: int = 0) -> np.ndarray:
    """Generate ``n`` byte addresses of the named workload shape."""
    try:
        spec = SCENARIOS[scenario]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {scenario!r}; have {sorted(SCENARIOS)}"
        ) from None
    if n < 0:
        raise ConfigError(f"negative stream length: {n}")
    return spec.make(n, seed)
