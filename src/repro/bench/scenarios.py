"""Fixed-seed workloads for the kernel benchmarks.

Address-stream shapes for the cache kernels — three cover the problem
space the simulators actually see:

* ``hotcold`` — the paper's own premise: a small set of hot objects
  receives most of the traffic (what makes placement worth doing).
  This is the representative stream the regression gate runs on.
* ``uniform`` — no locality at all; the adversarial case for the
  vectorised LRU kernel (nothing to elide, maximum rounds).
* ``strided`` — sequential scans at element granularity, the STREAM-
  like shape where consecutive accesses share cache lines.

Plus :func:`make_attribution_trace`, the analysis-stage workload: a
full synthetic trace in the paper's shape (a few thousand alloc/free
events under a sea of PEBS samples, with address reuse, same-instant
ties, stack hits and wild pointers) for benchmarking sample
attribution.

Every generator is deterministic in ``seed`` so two benchmark runs on
the same machine time identical work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigError
from repro.runtime.callstack import CallStack, Frame
from repro.trace.events import (
    AllocEvent,
    FreeEvent,
    SampleEvent,
    StaticVarRecord,
)
from repro.trace.tracefile import TraceFile
from repro.units import KIB, MIB


@dataclass(frozen=True, slots=True)
class StreamScenario:
    """One named workload shape."""

    name: str
    description: str
    make: Callable[[int, int], np.ndarray]


def _uniform(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 64 * MIB, size=n, dtype=np.int64).astype(np.uint64)


def _hotcold(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    hot = rng.integers(0, 256 * KIB, size=n, dtype=np.int64)
    cold = rng.integers(0, 512 * MIB, size=n, dtype=np.int64)
    return np.where(rng.random(n) < 0.95, hot, cold).astype(np.uint64)


def _strided(n: int, seed: int) -> np.ndarray:
    # Three interleaved 8-byte-element scans (triad-like), offset so
    # they map to different lines; the seed rotates the phase.
    base = np.arange(n, dtype=np.uint64) * np.uint64(8)
    lane = np.arange(n, dtype=np.uint64) % np.uint64(3)
    out = base + lane * np.uint64(16 * MIB)
    return np.roll(out, seed % max(n, 1))


SCENARIOS: dict[str, StreamScenario] = {
    s.name: s
    for s in (
        StreamScenario(
            "hotcold",
            "95% of accesses to a 256 KiB hot region (object locality)",
            _hotcold,
        ),
        StreamScenario(
            "uniform",
            "uniform random over 64 MiB (adversarial: no locality)",
            _uniform,
        ),
        StreamScenario(
            "strided",
            "three interleaved sequential 8-byte scans (STREAM-like)",
            _strided,
        ),
    )
}


def make_stream(scenario: str, n: int, seed: int = 0) -> np.ndarray:
    """Generate ``n`` byte addresses of the named workload shape."""
    try:
        spec = SCENARIOS[scenario]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {scenario!r}; have {sorted(SCENARIOS)}"
        ) from None
    if n < 0:
        raise ConfigError(f"negative stream length: {n}")
    return spec.make(n, seed)


# ---------------------------------------------------------------------------
# Attribution workload
# ---------------------------------------------------------------------------

#: Slot windows for the attribution trace: each allocation lives in
#: its own aligned window so reused addresses overlap in *time* (the
#: interesting case) but never in space within one instant.
_ATTR_SLOTS = 256
_ATTR_SLOT_BASE = 1 << 28
_ATTR_STACK_BASE = 1 << 40
_ATTR_STACK_SIZE = 8 * MIB
_ATTR_WILD_BASE = 1 << 45


def make_attribution_trace(n: int, seed: int = 0) -> TraceFile:
    """A fixed-seed trace in the paper's shape for the attribution bench.

    ``n`` events: ~1% heap mutations (alloc/free over recycled slot
    windows, 64 call sites, so addresses are reused with different
    sizes) under a sea of samples. Samples mostly target live or
    recently-freed slots (hits + stale-pointer misses), with small
    shares landing on static variables, in the stack region, or at
    wild addresses; ~30% carry Xeon-style latencies (zeros included).
    ~10% of timestamps tie with their predecessor, exercising the
    same-instant alloc/sample/free ordering rules.
    """
    if n < 0:
        raise ConfigError(f"negative trace length: {n}")
    rng = np.random.default_rng(seed)
    sites = [
        CallStack(
            frames=(
                Frame("bench", f"alloc_site_{i:02d}", "attr_bench.c", 100 + i),
                Frame("bench", "main", "attr_bench.c", 10),
            )
        )
        for i in range(64)
    ]
    statics = [
        StaticVarRecord(
            name=f"global_{i}",
            rank=0,
            address=(1 << 27) + i * 2 * (64 * KIB),
            size=64 * KIB,
        )
        for i in range(4)
    ]

    kind_roll = rng.random(n)
    slot_pick = rng.integers(0, _ATTR_SLOTS, size=n)
    offset_frac = rng.random(n)
    target_roll = rng.random(n)
    lat_roll = rng.random(n)
    lat_vals = rng.integers(0, 600, size=n)
    size_vals = rng.integers(4 * KIB, MIB, size=n)
    site_pick = rng.integers(0, len(sites), size=n)
    ties = rng.random(n) < 0.10

    events: list[AllocEvent | FreeEvent | SampleEvent] = []
    live: dict[int, tuple[int, int]] = {}  # slot -> (address, size)
    freed_at: dict[int, int] = {}  # slot -> time of its last free
    now = 0
    for i in range(n):
        if not ties[i]:
            now += 1
        slot = int(slot_pick[i])
        if kind_roll[i] < 0.01:
            if slot in live:
                address, _ = live.pop(slot)
                events.append(FreeEvent(time=float(now), rank=0, address=address))
                freed_at[slot] = now
            else:
                if freed_at.get(slot) == now:
                    # A same-instant free has not applied yet (frees
                    # order after allocs at one timestamp), so reusing
                    # the window now would be an overlap.
                    now += 1
                address = _ATTR_SLOT_BASE + slot * MIB
                size = int(size_vals[i])
                events.append(
                    AllocEvent(
                        time=float(now),
                        rank=0,
                        address=address,
                        size=size,
                        callstack=sites[int(site_pick[i])],
                    )
                )
                live[slot] = (address, size)
        else:
            roll = target_roll[i]
            if roll < 0.03:
                address = _ATTR_STACK_BASE + int(
                    offset_frac[i] * _ATTR_STACK_SIZE
                )
            elif roll < 0.05:
                address = _ATTR_WILD_BASE + int(offset_frac[i] * MIB)
            elif roll < 0.08:
                static = statics[i % len(statics)]
                address = static.address + int(offset_frac[i] * static.size)
            elif slot in live:
                base, size = live[slot]
                address = base + int(offset_frac[i] * size)
            else:
                # Stale pointer into a (possibly never-allocated) slot
                # window — resolves only if history happens to cover it.
                address = _ATTR_SLOT_BASE + slot * MIB + int(
                    offset_frac[i] * 4 * KIB
                )
            latency = int(lat_vals[i]) if lat_roll[i] < 0.30 else None
            events.append(
                SampleEvent(
                    time=float(now),
                    rank=0,
                    address=address,
                    latency_cycles=latency,
                )
            )

    return TraceFile(
        application="attr-bench",
        ranks=1,
        sampling_period=1000,
        events=events,
        statics=statics,
        metadata={"stack_region": (_ATTR_STACK_BASE, _ATTR_STACK_SIZE)},
    )
