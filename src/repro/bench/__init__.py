"""Benchmark/regression harness for the simulation kernels.

``repro-bench`` times each vectorised pipeline-stage kernel against
its per-access reference on fixed-seed workloads, verifies the two
agree bit for bit while the clock runs, writes a ``BENCH_*.json``
trajectory (wall time, throughput, speedup per stage) and gates CI on
a maximum-regression threshold against the committed baseline.
"""

from repro.bench.harness import (
    BenchRecord,
    BenchReport,
    compare_baseline,
    run_bench,
)
from repro.bench.scenarios import (
    SCENARIOS,
    make_attribution_trace,
    make_stream,
)

__all__ = [
    "BenchRecord",
    "BenchReport",
    "SCENARIOS",
    "compare_baseline",
    "make_attribution_trace",
    "make_stream",
    "run_bench",
]
