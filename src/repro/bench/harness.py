"""Stage benchmarks, the JSON trajectory and the regression gate.

Each benchmark times a vectorised kernel and (where one exists) its
per-access reference on the *same* fixed-seed workload, asserting the
two produce identical results while the clock runs — a benchmark whose
fast path diverges from the oracle aborts instead of reporting a
meaningless speedup. Timings are folded into a
:class:`repro.pipeline.metrics.StageMetrics` (counter + wall seconds
per ``bench:<stage>`` name) so the sweep layer's reporting understands
them, and serialised to ``BENCH_*.json`` for the committed trajectory.

The regression gate (:func:`compare_baseline`) compares throughput per
(stage, scenario, mode) against a baseline file: a stage that lost
more than ``max_regression`` of its baseline throughput fails the run.
Quick and full records never cross-compare — chunk-level fixed costs
make small-stream throughput systematically lower.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.analysis.attribution import attribute_samples
from repro.analysis.objects import ObjectKey, ObjectKind
from repro.analysis.profile import ObjectProfile, ProfileSet
from repro.analysis.vectorattr import attribute_samples_vector
from repro.advisor.report import PlacementEntry, PlacementReport
from repro.apps.cgpop import CGPOP
from repro.bench.scenarios import make_attribution_trace, make_stream
from repro.cache.hierarchy import CacheHierarchy, CacheLevelSpec
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.vectorkernels import VectorSetAssociativeCache
from repro.errors import ReproError
from repro.machine.config import xeon_phi_7250
from repro.pebs.sampler import PebsSampler
from repro.pipeline.metrics import StageMetrics
from repro.predict.replay import PredictorCalibration, TraceReplayPredictor
from repro.units import KIB, MIB


@dataclass(frozen=True, slots=True)
class BenchRecord:
    """One timed stage on one workload."""

    stage: str
    scenario: str
    mode: str  # "quick" | "full"
    n: int  # accesses / events / profiles processed
    seconds: float
    throughput: float  # n / seconds
    reference_seconds: float | None = None
    speedup: float | None = None  # reference_seconds / seconds

    def to_dict(self) -> dict:
        data = {
            "stage": self.stage,
            "scenario": self.scenario,
            "mode": self.mode,
            "n": self.n,
            "seconds": self.seconds,
            "throughput": self.throughput,
        }
        if self.reference_seconds is not None:
            data["reference_seconds"] = self.reference_seconds
        if self.speedup is not None:
            data["speedup"] = self.speedup
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "BenchRecord":
        return cls(
            stage=data["stage"],
            scenario=data["scenario"],
            mode=data.get("mode", "full"),
            n=int(data["n"]),
            seconds=float(data["seconds"]),
            throughput=float(data["throughput"]),
            reference_seconds=data.get("reference_seconds"),
            speedup=data.get("speedup"),
        )

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.stage, self.scenario, self.mode)


@dataclass
class BenchReport:
    """A full benchmark run: records plus provenance."""

    records: list[BenchRecord] = field(default_factory=list)
    mode: str = "full"
    seed: int = 0
    python: str = field(default_factory=platform.python_version)
    numpy: str = field(default_factory=lambda: np.__version__)
    metrics: StageMetrics = field(default_factory=StageMetrics)

    def record(self, rec: BenchRecord) -> None:
        self.records.append(rec)
        self.metrics.bump(f"bench:{rec.stage}")
        self.metrics.seconds[f"bench:{rec.stage}"] = (
            self.metrics.seconds.get(f"bench:{rec.stage}", 0.0) + rec.seconds
        )

    def get(self, stage: str, scenario: str | None = None) -> BenchRecord:
        for rec in self.records:
            if rec.stage == stage and scenario in (None, rec.scenario):
                return rec
        raise KeyError(f"no record for {stage}/{scenario}")

    def to_dict(self) -> dict:
        return {
            "schema": "repro-bench/1",
            "mode": self.mode,
            "seed": self.seed,
            "python": self.python,
            "numpy": self.numpy,
            "records": [r.to_dict() for r in self.records],
            "metrics": self.metrics.to_dict(),
        }

    def save(self, path: Path | str) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def from_dict(cls, data: dict) -> "BenchReport":
        report = cls(
            mode=data.get("mode", "full"),
            seed=int(data.get("seed", 0)),
            python=data.get("python", ""),
            numpy=data.get("numpy", ""),
            metrics=StageMetrics.from_dict(data.get("metrics", {})),
        )
        report.records = [
            BenchRecord.from_dict(r) for r in data.get("records", [])
        ]
        return report

    @classmethod
    def load(cls, path: Path | str) -> "BenchReport":
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"cannot read baseline {path}: {exc}") from exc
        return cls.from_dict(data)


def _time(fn: Callable[[], object], repeats: int) -> tuple[float, object]:
    """Best-of-``repeats`` wall time; returns (seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


# ---------------------------------------------------------------------------
# Stage benchmarks
# ---------------------------------------------------------------------------

#: Geometry of the benchmarked LLC: an 8 MiB 16-way cache — large
#: enough that the vectorised rounds run thousands of sets wide.
_LLC_CAPACITY = 8 * MIB
_LLC_WAYS = 16


def _bench_setassoc(
    report: BenchReport, scenario: str, n: int, seed: int, repeats: int
) -> None:
    addrs = make_stream(scenario, n, seed)
    ref = SetAssociativeCache(_LLC_CAPACITY, 64, _LLC_WAYS)
    ref_seconds, ref_hits = _time(
        lambda: ref.access_stream_reference(addrs), 1
    )
    vec_seconds, vec_hits = _time(
        lambda: VectorSetAssociativeCache(
            _LLC_CAPACITY, 64, _LLC_WAYS
        ).access_stream(addrs),
        repeats,
    )
    if not np.array_equal(ref_hits, vec_hits):
        raise ReproError(
            f"setassoc kernel diverged from the oracle on {scenario}"
        )
    report.record(
        BenchRecord(
            stage="cache_setassoc",
            scenario=scenario,
            mode=report.mode,
            n=n,
            seconds=vec_seconds,
            throughput=n / vec_seconds,
            reference_seconds=ref_seconds,
            speedup=ref_seconds / vec_seconds,
        )
    )


def _bench_directmap(
    report: BenchReport, scenario: str, n: int, seed: int, repeats: int
) -> None:
    from repro.cache.directmap import DirectMappedCache

    addrs = make_stream(scenario, n, seed)
    ref = SetAssociativeCache(_LLC_CAPACITY, 64, ways=1)
    ref_seconds, ref_hits = _time(
        lambda: ref.access_stream_reference(addrs), 1
    )
    vec_seconds, vec_hits = _time(
        lambda: DirectMappedCache(_LLC_CAPACITY, 64).access_stream(addrs),
        repeats,
    )
    if not np.array_equal(ref_hits, vec_hits):
        raise ReproError(
            f"direct-mapped kernel diverged from the 1-way oracle on "
            f"{scenario}"
        )
    report.record(
        BenchRecord(
            stage="cache_directmap",
            scenario=scenario,
            mode=report.mode,
            n=n,
            seconds=vec_seconds,
            throughput=n / vec_seconds,
            reference_seconds=ref_seconds,
            speedup=ref_seconds / vec_seconds,
        )
    )


def _bench_hierarchy(
    report: BenchReport, scenario: str, n: int, seed: int, repeats: int
) -> None:
    def specs():
        return dict(
            l1=CacheLevelSpec(capacity=32 * KIB, line_size=64, ways=8),
            llc=CacheLevelSpec(capacity=512 * KIB, line_size=64, ways=16),
        )

    addrs = make_stream(scenario, n, seed)
    ref_seconds, ref_miss = _time(
        lambda: CacheHierarchy(**specs()).feed_reference(addrs), 1
    )
    vec_seconds, vec_miss = _time(
        lambda: CacheHierarchy(**specs()).feed(addrs), repeats
    )
    if not np.array_equal(ref_miss, vec_miss):
        raise ReproError(
            f"hierarchy feed diverged from the oracle on {scenario}"
        )
    report.record(
        BenchRecord(
            stage="cache_hierarchy",
            scenario=scenario,
            mode=report.mode,
            n=n,
            seconds=vec_seconds,
            throughput=n / vec_seconds,
            reference_seconds=ref_seconds,
            speedup=ref_seconds / vec_seconds,
        )
    )


def _sample_reference(
    period: int, addresses: np.ndarray
) -> list[int]:
    """Per-event countdown loop — the sampler's scalar oracle."""
    countdown = period
    picks = []
    for i in range(addresses.size):
        countdown -= 1
        if countdown == 0:
            picks.append(i)
            countdown = period
    return picks


def _bench_pebs(
    report: BenchReport, scenario: str, n: int, seed: int, repeats: int
) -> None:
    period = 37589 if n >= 200_000 else 97
    addrs = make_stream(scenario, n, seed)
    times = np.arange(n, dtype=float)
    ref_seconds, ref_picks = _time(
        lambda: _sample_reference(period, addrs), 1
    )
    vec_seconds, vec_picks = _time(
        lambda: PebsSampler(period=period).sample_positions(n), repeats
    )
    if list(vec_picks) != ref_picks:
        raise ReproError(
            f"sampler positions diverged from the countdown oracle on "
            f"{scenario}"
        )
    # Exercise the full array path once so attribution cost is real.
    PebsSampler(period=period).sample_chunk_arrays(addrs, times)
    report.record(
        BenchRecord(
            stage="pebs_sampler",
            scenario=scenario,
            mode=report.mode,
            n=n,
            seconds=vec_seconds,
            throughput=n / vec_seconds,
            reference_seconds=ref_seconds,
            speedup=ref_seconds / vec_seconds,
        )
    )


def _synthetic_profiles(
    n_objects: int, seed: int
) -> tuple[ProfileSet, PlacementReport]:
    rng = np.random.default_rng(seed)
    misses = rng.integers(1, 1000, size=n_objects)
    sizes = rng.integers(4 * KIB, 4 * MIB, size=n_objects)
    profiles = ProfileSet(
        profiles=[
            ObjectProfile(
                key=ObjectKey(
                    kind=ObjectKind.DYNAMIC,
                    identity=((f"alloc_{i}", "bench.c", int(i)),),
                ),
                sampled_misses=int(misses[i]),
                size=int(sizes[i]),
                sampled_latency=int(misses[i]) * 300,
            )
            for i in range(n_objects)
        ],
        stack_samples=17,
        unresolved_samples=5,
    )
    report = PlacementReport(application="bench", strategy="density")
    for i in range(0, n_objects, 2):  # promote every other object
        report.entries.append(
            PlacementEntry(
                key=profiles.profiles[i].key,
                tier="MCDRAM",
                size=int(sizes[i]),
                sampled_misses=int(misses[i]),
                fraction=1.0 if i % 4 else 0.5,
            )
        )
    return profiles, report


def _predict_share_reference(
    profiles: ProfileSet, report: PlacementReport
) -> float:
    """Scalar replay: the loop the vectorised predictor replaced."""
    fraction_by_key = {
        e.key.identity: e.fraction
        for e in report.entries
        if e.key.kind == ObjectKind.DYNAMIC
    }
    promoted = sum(
        p.sampled_misses * fraction_by_key.get(p.key.identity, 0.0)
        for p in profiles.dynamic_profiles
    )
    return promoted / profiles.total_samples


def _bench_replay(
    report: BenchReport, n_objects: int, seed: int, repeats: int
) -> None:
    profiles, placement = _synthetic_profiles(n_objects, seed)
    machine = xeon_phi_7250()
    predictor = TraceReplayPredictor(
        machine,
        PredictorCalibration(
            fom_ddr=1000.0, ddr_time=10.0, memory_bound_fraction=0.6
        ),
    )
    ref_seconds, ref_share = _time(
        lambda: _predict_share_reference(profiles, placement), 1
    )
    vec_seconds, outcome = _time(
        lambda: predictor.predict(profiles, placement), repeats
    )
    if abs(outcome.promoted_miss_share - ref_share) > 1e-9:
        raise ReproError("replay predictor diverged from the scalar oracle")
    report.record(
        BenchRecord(
            stage="predict_replay",
            scenario="synthetic-objects",
            mode=report.mode,
            n=n_objects,
            seconds=vec_seconds,
            throughput=n_objects / vec_seconds,
            reference_seconds=ref_seconds,
            speedup=ref_seconds / vec_seconds,
        )
    )


def _bench_attribution(
    report: BenchReport, n: int, seed: int, repeats: int
) -> None:
    from repro.trace.columnar import ColumnarTrace

    trace = make_attribution_trace(n, seed)
    columnar = ColumnarTrace.from_tracefile(trace)
    # The oracle replays dataclass events one at a time — time it once
    # (it *is* the slow path); the vectorised kernel consumes the
    # prebuilt columnar view, matching how paramedir runs it.
    ref_seconds, ref_result = _time(lambda: attribute_samples(trace), 1)
    vec_seconds, vec_result = _time(
        lambda: attribute_samples_vector(columnar), repeats
    )
    if vec_result != ref_result:
        raise ReproError(
            "vectorised attribution diverged from the replay oracle"
        )
    report.record(
        BenchRecord(
            stage="analysis_attribution",
            scenario="alloc-sample-mix",
            mode=report.mode,
            n=n,
            seconds=vec_seconds,
            throughput=n / vec_seconds,
            reference_seconds=ref_seconds,
            speedup=ref_seconds / vec_seconds,
        )
    )


def _bench_online_readvise(
    report: BenchReport, n: int, seed: int, repeats: int
) -> None:
    """Windowed incremental attribution vs the one-shot batch pass.

    The online daemon advances a resumable cursor once per decision
    window; this stage measures what the windowing costs over a whole
    trace (16 cursor advances + snapshots) and asserts the final
    snapshot is bit-for-bit the batch result.
    """
    from repro.analysis.vectorattr import IncrementalAttributor
    from repro.trace.columnar import ColumnarTrace

    trace = make_attribution_trace(n, seed)
    columnar = ColumnarTrace.from_tracefile(trace)
    ref_seconds, batch = _time(
        lambda: attribute_samples_vector(columnar), repeats
    )
    n_windows = 16
    times = columnar.times
    boundaries = (
        np.linspace(times[0], times[-1], n_windows + 1)[1:-1]
        if times.size
        else np.zeros(0)
    )

    def windowed():
        attributor = IncrementalAttributor(columnar)
        for boundary in boundaries:
            attributor.advance_time(float(boundary))
            attributor.result()  # per-window snapshot, like the daemon
        attributor.advance_all()
        return attributor.result()

    vec_seconds, result = _time(windowed, repeats)
    if result != batch:
        raise ReproError(
            "windowed attribution diverged from the batch vector pass"
        )
    report.record(
        BenchRecord(
            stage="online_readvise",
            scenario=f"windowed-{n_windows}",
            mode=report.mode,
            n=n,
            seconds=vec_seconds,
            throughput=n / vec_seconds,
            reference_seconds=ref_seconds,
            speedup=ref_seconds / vec_seconds,
        )
    )


def _windowed_cost_reference(app, machine, profiling, schedule):
    """The pre-bisect ``windowed_cost``: O(windows x schedule) linear
    rescans. Kept verbatim as the oracle the bisect path must match
    bit-for-bit (same accumulation order, so equality is exact)."""
    from repro.machine.performance import ExecutionModel, PlacedTraffic
    from repro.placement.policies import _total_traffic_bytes

    truth = profiling.ground_truth
    total = _total_traffic_bytes(app, machine)
    cal = app.calibration
    lookup = sorted(schedule)
    fast = 0.0
    if truth.total_misses > 0:
        for window in truth.windows:
            misses = window.total_misses
            if misses == 0:
                continue
            midpoint = (window.t0 + window.t1) / 2.0
            active = frozenset()
            for t0, _, sites in lookup:
                if t0 <= midpoint:
                    active = sites
                else:
                    break
            fast_misses = sum(
                count
                for site, count in window.misses_by_site.items()
                if site in active
            )
            fast += total * (misses / truth.total_misses) * (fast_misses / misses)
    traffic = PlacedTraffic(
        by_tier={
            machine.fast_tier.name: fast,
            machine.slow_tier.name: total - fast,
        }
    )
    return ExecutionModel(machine).cost(
        traffic, compute_time=cal.compute_time, work=cal.work
    )


def _make_scoring_workload(n_windows: int, n_entries: int, seed: int):
    """Synthetic truth timeline + placement schedule for the scorer."""
    from types import SimpleNamespace

    from repro.apps.base import WindowTruth
    from repro.apps.registry import get_app

    rng = np.random.default_rng(seed)
    app = get_app("phaseshift")
    horizon = app.calibration.ddr_time
    site_pool = [o.name for o in app.objects if not o.static]
    edges = np.linspace(0.0, horizon, n_windows + 1)
    windows = [
        WindowTruth(
            t0=float(edges[i]),
            t1=float(edges[i + 1]),
            misses_by_site={
                site: int(count)
                for site, count in zip(
                    site_pool,
                    rng.integers(0, 500, size=len(site_pool)),
                )
            },
        )
        for i in range(n_windows)
    ]
    total = sum(w.total_misses for w in windows)
    truth = SimpleNamespace(windows=windows, total_misses=total)
    starts = np.sort(
        rng.uniform(0.0, horizon, size=n_entries - 1)
    )
    schedule = [(0.0, float(starts[0]), frozenset(site_pool[:1]))]
    for i, t0 in enumerate(starts):
        t1 = float(starts[i + 1]) if i + 1 < starts.size else horizon
        picks = rng.choice(
            len(site_pool),
            size=int(rng.integers(0, len(site_pool) + 1)),
            replace=False,
        )
        schedule.append(
            (float(t0), t1, frozenset(site_pool[int(p)] for p in picks))
        )
    return app, SimpleNamespace(ground_truth=truth), schedule


def _bench_windowed_scoring(
    report: BenchReport, n_windows: int, seed: int, repeats: int
) -> None:
    """Bisect schedule lookup vs the linear-rescan oracle.

    The cluster layer scores thousands of (truth, schedule) pairs, so
    ``windowed_cost``'s inner lookup is hot; this stage pins the
    bisect rewrite to the scan's exact ``RunCost`` while timing it.
    """
    from repro.online.scoring import windowed_cost

    n_entries = max(8, n_windows // 4)
    app, profiling, schedule = _make_scoring_workload(
        n_windows, n_entries, seed
    )
    machine = xeon_phi_7250()
    ref_seconds, ref_cost = _time(
        lambda: _windowed_cost_reference(app, machine, profiling, schedule),
        1,
    )
    vec_seconds, vec_cost = _time(
        lambda: windowed_cost(app, machine, profiling, schedule), repeats
    )
    if vec_cost != ref_cost:
        raise ReproError(
            "bisect windowed_cost diverged from the linear-scan oracle"
        )
    report.record(
        BenchRecord(
            stage="windowed_scoring",
            scenario=f"windows-{n_windows}",
            mode=report.mode,
            n=n_windows,
            seconds=vec_seconds,
            throughput=n_windows / vec_seconds,
            reference_seconds=ref_seconds,
            speedup=ref_seconds / vec_seconds,
        )
    )


def _bench_cluster_schedule(
    report: BenchReport, n_arrivals: int, seed: int, repeats: int
) -> None:
    """End-to-end cluster event loop on a fixed-seed fleet.

    No oracle exists (the simulator *is* the reference); instead the
    stage asserts the run's own invariants — contention charged
    (aggregate FOM bounded by the isolated sum) and a sane fairness
    index — while timing arrivals through the full admit / contend /
    depart / re-advise pipeline.
    """
    from repro.cluster import ArrivalStream, ClusterSim, make_fleet

    fleet = make_fleet(2, 320 * MIB)
    stream = ArrivalStream(
        seed=seed,
        n_arrivals=n_arrivals,
        rate=0.2,
        mix=("phaseshift", "minife", "cgpop"),
    )

    def run():
        sim = ClusterSim(fleet, stream)
        return sim.run()

    seconds, run_report = _time(run, repeats)
    if run_report.aggregate_fom > run_report.aggregate_fom_isolated:
        raise ReproError(
            "cluster bench: aggregate FOM exceeds the isolated bound "
            "(contention not charged)"
        )
    if not 0.0 <= run_report.fairness <= 1.0:
        raise ReproError(
            f"cluster bench: fairness {run_report.fairness} outside [0,1]"
        )
    report.record(
        BenchRecord(
            stage="cluster_schedule",
            scenario="fleet-2x320M",
            mode=report.mode,
            n=n_arrivals,
            seconds=seconds,
            throughput=n_arrivals / seconds,
        )
    )


class _SweepBenchApp(CGPOP):
    """Profile-heavy CGPOP variant for the sweep-throughput stage.

    The shared trace plane pays off exactly when the per-worker
    profiling run dominates a cell's cost, so the bench workload
    inflates the miss stream (scaled per mode via the instance
    attribute) while keeping the grid small. Module-level class: the
    pool pickles the instance into its workers.
    """

    name = "benchsweep"


def _private_rss_kib() -> int | None:
    """This process's private RSS in KiB, or None off-Linux."""
    total = 0
    try:
        with open("/proc/self/smaps_rollup") as fh:
            for line in fh:
                if line.startswith(
                    ("Private_Clean:", "Private_Dirty:", "Private_Hugetlb:")
                ):
                    total += int(line.split()[1])
    except OSError:
        return None
    return total


def _sweep_rss_probe(queue, app, machine, cell, seed, plane) -> None:
    """Forked probe: run one cell, report private RSS + any error."""
    from repro.parallel.sweep import _execute_cell

    payload = _execute_cell(
        app, machine, cell, seed, {}, None, 1, plane=plane
    )
    queue.put((_private_rss_kib(), payload[1]))


def _bench_sweep_rss(
    report: BenchReport, app, machine, grid, seed: int
) -> None:
    """Per-worker private RSS, with and without the shared plane.

    Four forked probes (matching the jobs=4 throughput stage) each
    execute one grid cell and read ``/proc/self/smaps_rollup``; fork
    keeps the interpreter's baseline copy-on-write-shared, so the
    measured private bytes are dominated by what the cell itself
    materialised — the whole row-mode trace privately, or a zero-copy
    view of the plane. Skipped silently where smaps_rollup or the
    fork start method is unavailable (non-Linux).
    """
    import multiprocessing

    from repro.pipeline.experiment import enumerate_cells
    from repro.pipeline.framework import HybridMemoryFramework
    from repro.trace.shared import SharedTracePlane
    from repro.trace.tracer import TracerConfig

    if _private_rss_kib() is None:
        return
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        return
    cells = [c for c in enumerate_cells(app, grid) if c.kind == "grid"][:4]
    framework = HybridMemoryFramework(
        app,
        machine,
        tracer_config=TracerConfig(
            sampling_period=app.sampling_period, columnar_samples=True
        ),
        seed=seed,
    )
    profiling = framework.profile()
    columnar = profiling.tracer.columnar_trace()
    means: dict[str, float] = {}
    with SharedTracePlane() as plane:
        handle = plane.publish(
            "bench-sweep-rss", columnar, profiling.ground_truth
        )
        for scenario, plane_handle in (("private", None), ("plane", handle)):
            queue = ctx.SimpleQueue()
            procs = [
                ctx.Process(
                    target=_sweep_rss_probe,
                    args=(queue, app, machine, cell, seed, plane_handle),
                )
                for cell in cells
            ]
            for proc in procs:
                proc.start()
            results = [queue.get() for _ in procs]
            for proc in procs:
                proc.join()
            errors = [error for _, error in results if error]
            if errors:
                raise ReproError(
                    f"sweep RSS probe ({scenario}) failed a cell:\n"
                    + errors[0]
                )
            kibs = [kib for kib, _ in results if kib is not None]
            if not kibs:
                return
            means[scenario] = sum(kibs) / len(kibs)
    if means["plane"] >= 0.7 * means["private"]:
        raise ReproError(
            f"shared plane did not keep worker RSS flat: "
            f"{means['plane']:.0f} KiB private with the plane vs "
            f"{means['private']:.0f} KiB without"
        )
    for scenario in ("private", "plane"):
        mean_kib = means[scenario]
        report.record(
            BenchRecord(
                stage="sweep_worker_rss",
                scenario=scenario,
                mode=report.mode,
                n=len(cells),
                # Encoded so the regression gate's throughput floor
                # catches RSS *growth*: throughput ~ 1/RSS.
                seconds=mean_kib / 1e6,
                throughput=1e6 / mean_kib,
                reference_seconds=(
                    means["private"] / 1e6 if scenario == "plane" else None
                ),
                speedup=(
                    means["private"] / mean_kib
                    if scenario == "plane"
                    else None
                ),
            )
        )


def _bench_sweep_throughput(
    report: BenchReport, stream_misses: int, seed: int
) -> None:
    """Pool sweep at jobs=4, without vs with the shared trace plane.

    The workload is profile-dominated (inflated miss stream, small
    grid), so the baseline pays one row-mode profiling run per worker
    while the plane path profiles once in the parent via the columnar
    tracer and workers attach zero-copy. Rows must be identical across
    the two paths — the stage aborts on divergence, like every other
    bench oracle. Wall time of a 4-worker pool is too expensive to
    repeat, so each path is timed once.
    """
    from repro.parallel.sweep import run_sweep
    from repro.pipeline.experiment import ExperimentGrid, enumerate_cells

    app = _SweepBenchApp()
    app.stream_misses = stream_misses
    machine = xeon_phi_7250()
    grid = ExperimentGrid(
        budgets=(32 * MIB, 64 * MIB), strategies=("density", "misses-0%")
    )
    n_cells = len(enumerate_cells(app, grid))

    def sweep(shared_plane: bool):
        result = run_sweep(
            [app],
            machine=machine,
            grid=grid,
            jobs=4,
            seed=seed,
            shared_plane=shared_plane,
        )
        if result.failures or result.skipped:
            raise ReproError(
                f"sweep bench cells failed (shared_plane={shared_plane})"
            )
        return sorted(
            (o.cell.key, o.row) for o in result.outcomes
        ), result.metrics

    base_seconds, (base_rows, _) = _time(lambda: sweep(False), 1)
    plane_seconds, (plane_rows, plane_metrics) = _time(
        lambda: sweep(True), 1
    )
    if base_rows != plane_rows:
        raise ReproError(
            "shared-plane sweep rows diverged from the private-profile "
            "pool sweep"
        )
    if not plane_metrics.counters.get("plane_publish"):
        raise ReproError("shared-plane sweep never published a plane")
    speedup = base_seconds / plane_seconds
    if report.mode == "full" and speedup < 3.0:
        raise ReproError(
            f"shared plane sped the profile-bound sweep up only "
            f"{speedup:.2f}x (target >= 3x)"
        )
    report.record(
        BenchRecord(
            stage="sweep_throughput",
            scenario="pool-jobs4",
            mode=report.mode,
            n=n_cells,
            seconds=base_seconds,
            throughput=n_cells / base_seconds,
        )
    )
    report.record(
        BenchRecord(
            stage="sweep_throughput",
            scenario="plane-jobs4",
            mode=report.mode,
            n=n_cells,
            seconds=plane_seconds,
            throughput=n_cells / plane_seconds,
            reference_seconds=base_seconds,
            speedup=speedup,
        )
    )
    _bench_sweep_rss(report, app, machine, grid, seed)


# ---------------------------------------------------------------------------
# Entry point + regression gate
# ---------------------------------------------------------------------------

#: (stage benchmark, scenarios it runs on). The hot/cold stream is the
#: representative workload; uniform keeps the adversarial number
#: honest in the trajectory.
_STREAM_STAGES = (
    (_bench_setassoc, ("hotcold", "uniform", "strided")),
    (_bench_directmap, ("hotcold", "uniform")),
    (_bench_hierarchy, ("hotcold",)),
    (_bench_pebs, ("uniform",)),
)


def run_bench(
    quick: bool = False, seed: int = 0, repeats: int | None = None
) -> BenchReport:
    """Run every stage benchmark; returns the populated report.

    ``quick`` shrinks streams ~10x (CI smoke); ``full`` is the
    committed-trajectory configuration with the 1M-access streams.
    """
    mode = "quick" if quick else "full"
    # Quick streams stay long enough (~10ms of kernel time) that one
    # scheduler blip cannot swing the measured throughput by tens of
    # percent — the regression gate depends on that stability.
    n_stream = 200_000 if quick else 1_000_000
    n_hierarchy = 20_000 if quick else 200_000
    n_objects = 2_000 if quick else 20_000
    n_attr = 100_000 if quick else 1_000_000
    # Quick streams are noisy (chunk fixed costs, timer resolution,
    # transient machine load); best-of-7 spreads the timing window so
    # the CI gate does not trip on a single busy stretch.
    if repeats is None:
        repeats = 7 if quick else 3
    report = BenchReport(mode=mode, seed=seed)
    for bench, scenarios in _STREAM_STAGES:
        n = n_hierarchy if bench is _bench_hierarchy else n_stream
        for scenario in scenarios:
            bench(report, scenario, n, seed, repeats)
    _bench_replay(report, n_objects, seed, repeats)
    # The oracle replay dominates this stage's wall time; one timed
    # pass keeps the quick (CI) configuration honest but cheap.
    _bench_attribution(report, n_attr, seed, repeats=1 if quick else repeats)
    _bench_online_readvise(
        report, n_attr, seed, repeats=1 if quick else repeats
    )
    n_windows = 2_000 if quick else 20_000
    _bench_windowed_scoring(report, n_windows, seed, repeats)
    n_arrivals = 24 if quick else 96
    _bench_cluster_schedule(
        report, n_arrivals, seed, repeats=1 if quick else min(repeats, 3)
    )
    n_misses = 500_000 if quick else 2_000_000
    _bench_sweep_throughput(report, n_misses, seed)
    return report


def compare_baseline(
    current: BenchReport,
    baseline: BenchReport,
    max_regression: float = 0.25,
) -> list[str]:
    """Regression check: throughput per (stage, scenario, mode).

    Returns human-readable failure strings; empty means the gate
    passes. Records without a matching baseline key are ignored (new
    stages are not regressions).
    """
    if not 0.0 <= max_regression < 1.0:
        raise ReproError(
            f"max regression must be in [0, 1), got {max_regression}"
        )
    by_key = {rec.key: rec for rec in baseline.records}
    failures = []
    for rec in current.records:
        base = by_key.get(rec.key)
        if base is None or base.throughput <= 0:
            continue
        floor = base.throughput * (1.0 - max_regression)
        if rec.throughput < floor:
            lost = 1.0 - rec.throughput / base.throughput
            failures.append(
                f"{rec.stage}/{rec.scenario} [{rec.mode}]: "
                f"{rec.throughput:,.0f}/s is {lost:.0%} below the "
                f"baseline {base.throughput:,.0f}/s "
                f"(allowed {max_regression:.0%})"
            )
    return failures
