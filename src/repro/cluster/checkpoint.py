"""Crash-safe checkpointing of a cluster simulation in flight.

Same durability discipline as the online daemon's checkpoint
(:mod:`repro.online.checkpoint`, whose codec and atomic writer this
module reuses): one CRC-checksummed, atomically-replaced file per
checkpoint, written after every event batch. A SIGKILL at any instant
loses at most the batch in flight; ``repro-cluster --resume`` restores
the clock, the event heap (times *and* sequence numbers, so later
pushes sort identically), every node's extent holes and tenant
placements, the admission queue, the journal written so far, and the
accounting ledgers — and then replays the remaining events to a
byte-identical decision journal (CI's ``cluster-chaos`` job kills a
live fleet and ``cmp``s exactly that).

The simulation consumes no RNG after :meth:`ArrivalStream.generate`
— every fault verdict is a seeded hash of stable identities — so
"RNG state" in the checkpoint is the arrival stream's own identity:
the session key pins ``(nodes, arrivals, scheduler, strategy, fault
plan, backpressure, …)`` and a fingerprint of the generated trace,
and resuming against any other session refuses, exactly like the
daemon's foreign-session refusal.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.online.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    load_checkpoint,
    save_checkpoint,
)

#: File name of the cluster checkpoint inside its directory.
CLUSTER_CHECKPOINT_FILENAME = "cluster.checkpoint"

#: Record type tag (shares the journal's line codec).
RECORD_CLUSTER_CHECKPOINT = "cluster-checkpoint"


def cluster_session_key(identity: dict) -> str:
    """Content hash pinning one cluster run's identity.

    ``identity`` carries everything that shapes the event timeline:
    node specs, the arrival stream (seed, rate, burst), scheduler and
    strategy, grant/hysteresis/migration knobs, the fault plan and the
    backpressure policy, plus a fingerprint of the generated arrival
    trace. Wall-clock-only knobs (checkpoint cadence, chaos pauses)
    are deliberately excluded so a chaos-stretched run resumes
    cleanly.
    """
    canonical = json.dumps(
        {"identity": identity, "schema": CHECKPOINT_SCHEMA_VERSION},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:32]


def cluster_checkpoint_path(directory: str | Path) -> Path:
    return Path(directory) / CLUSTER_CHECKPOINT_FILENAME


def save_cluster_checkpoint(directory: str | Path, payload: dict) -> Path:
    return save_checkpoint(
        directory,
        payload,
        filename=CLUSTER_CHECKPOINT_FILENAME,
        record_type=RECORD_CLUSTER_CHECKPOINT,
    )


def load_cluster_checkpoint(directory: str | Path) -> dict | None:
    return load_checkpoint(
        directory,
        filename=CLUSTER_CHECKPOINT_FILENAME,
        record_type=RECORD_CLUSTER_CHECKPOINT,
        label="a cluster checkpoint",
    )
