"""Cluster-scale multi-tenant placement (ROADMAP item 2).

The paper places one application on one node once; this package
scales the question up: a fleet of hybrid-memory nodes, tenants
arriving and departing over time, per-node MCDRAM budgets carved into
contiguous grants, co-residents splitting delivered bandwidth, and
freed capacity re-advised to survivors. See architecture §15. The
fault domain — node crash/drain/recover, tenant kills, crash rescue,
overload backpressure, and the SIGKILL-safe checkpoint — is
architecture §16.
"""

from repro.cluster.arrivals import (
    DEFAULT_MIX,
    DEMAND_LADDER,
    ArrivalStream,
    JobRequest,
)
from repro.cluster.backpressure import (
    REJECTION_REASONS,
    BackpressurePolicy,
)
from repro.cluster.events import EventQueue, SimClock
from repro.cluster.metrics import (
    ClusterReport,
    Rejection,
    RescueRecord,
    TenantCasualty,
    TenantOutcome,
    jain_index,
)
from repro.cluster.node import (
    Extent,
    ExtentAllocator,
    NodeSpec,
    make_fleet,
)
from repro.cluster.scheduler import SCHEDULER_NAMES, get_scheduler
from repro.cluster.simulator import ClusterSim, run_cluster

__all__ = [
    "ArrivalStream",
    "BackpressurePolicy",
    "ClusterReport",
    "ClusterSim",
    "DEFAULT_MIX",
    "DEMAND_LADDER",
    "EventQueue",
    "Extent",
    "ExtentAllocator",
    "JobRequest",
    "NodeSpec",
    "REJECTION_REASONS",
    "Rejection",
    "RescueRecord",
    "SCHEDULER_NAMES",
    "SimClock",
    "TenantCasualty",
    "TenantOutcome",
    "get_scheduler",
    "jain_index",
    "make_fleet",
    "run_cluster",
]
