"""Pluggable node-selection policies for cluster admission.

The joint scheduler decides twice per arrival: *which node* hosts the
tenant (this module) and *which objects* of the tenant go fast (the
existing knapsack advisor, run against the node's remaining HBW
budget by the simulator). Node selection sees each node's current
hole structure and tenancy and returns the node to admit into, or
``None`` to queue the job.

All three policies only admit a node whose *largest contiguous hole*
clears the job's minimum acceptable grant — fragmentation, not just
free bytes, decides admissibility. The simulator hands policies only
*eligible* nodes (status ``up``): draining and crashed nodes never
appear in the list, so policies stay fault-oblivious.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.errors import ConfigError


class NodeView(Protocol):
    """What a policy may inspect about one node (read-only)."""

    name: str

    @property
    def largest_free(self) -> int: ...

    @property
    def total_free(self) -> int: ...

    @property
    def n_tenants(self) -> int: ...


#: A policy maps (nodes in declaration order, minimum grant) to the
#: chosen node or None. Declaration order is the deterministic
#: tie-break everywhere.
SchedulerPolicy = Callable[[list, int], "object | None"]


def first_fit(nodes: list, min_grant: int):
    """First node (declaration order) whose largest hole fits."""
    for node in nodes:
        if node.largest_free >= min_grant:
            return node
    return None


def best_fit(nodes: list, min_grant: int):
    """Node with the *tightest* hole that still fits.

    Preserves the large holes for large tenants — the classic
    anti-fragmentation heuristic, at the cost of packing nodes hot.
    """
    best = None
    for node in nodes:
        hole = node.largest_free
        if hole >= min_grant and (best is None or hole < best.largest_free):
            best = node
    return best


def load_aware(nodes: list, min_grant: int):
    """Least-loaded fitting node (fewest resident tenants).

    Tenants on a node split its delivered bandwidth, so spreading
    tenancy is the contention-minimising choice even when it
    fragments budgets faster.
    """
    best = None
    for node in nodes:
        if node.largest_free >= min_grant and (
            best is None or node.n_tenants < best.n_tenants
        ):
            best = node
    return best


_POLICIES: dict[str, SchedulerPolicy] = {
    "first-fit": first_fit,
    "best-fit": best_fit,
    "load-aware": load_aware,
}

SCHEDULER_NAMES: tuple[str, ...] = tuple(_POLICIES)


def get_scheduler(name: str) -> SchedulerPolicy:
    """Look a policy up by CLI name."""
    try:
        return _POLICIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown scheduler {name!r}; have {sorted(_POLICIES)}"
        ) from None
