"""Discrete-event substrate: the clock and the event heap.

The cluster simulation never reads wall-clock time — simulated time
lives in a :class:`SimClock` that only event processing advances, so
a run is a pure function of its inputs (the determinism CI diffs
journals across processes to prove). The heap orders events by
``(time, seq)``; the monotone sequence number makes same-instant
events fire in scheduling order, which pins the journal byte-for-byte
even when arrivals and completions collide.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError

#: Event kinds, in the order simultaneous events of different kinds
#: would have been scheduled.
ARRIVAL = "arrival"
COMPLETE = "complete"

#: Cluster fault-domain events (scheduled by the seeded
#: :class:`~repro.faults.injector.FaultInjector`, first-class on the
#: same heap as arrivals and completions).
NODE_CRASH = "node_crash"
NODE_DRAIN = "node_drain"
NODE_RECOVER = "node_recover"
TENANT_KILL = "tenant_kill"

#: Every kind the cluster simulator dispatches (checkpoint payloads
#: refuse anything else).
EVENT_KINDS: tuple[str, ...] = (
    ARRIVAL,
    COMPLETE,
    NODE_CRASH,
    NODE_DRAIN,
    NODE_RECOVER,
    TENANT_KILL,
)


class SimClock:
    """Monotone simulated clock (seconds since run start)."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ConfigError(f"clock cannot start negative: {start}")
        self._now = start

    @property
    def now(self) -> float:
        return self._now

    def advance(self, t: float) -> None:
        if t < self._now:
            raise ConfigError(
                f"clock cannot run backwards: {t} < {self._now}"
            )
        self._now = t


@dataclass(frozen=True, slots=True)
class Event:
    """One scheduled occurrence."""

    time: float
    seq: int
    kind: str
    payload: Any


@dataclass
class EventQueue:
    """Seeded-deterministic event heap."""

    _heap: list[tuple[float, int, Event]] = field(default_factory=list)
    _seq: int = 0

    def push(self, time: float, kind: str, payload: Any) -> Event:
        if time < 0:
            raise ConfigError(f"cannot schedule at negative time {time}")
        event = Event(time=time, seq=self._seq, kind=kind, payload=payload)
        heapq.heappush(self._heap, (time, self._seq, event))
        self._seq += 1
        return event

    def pop(self) -> Event:
        if not self._heap:
            raise ConfigError("event queue is empty")
        _, _, event = heapq.heappop(self._heap)
        return event

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    # -- checkpoint/restore ---------------------------------------------

    def snapshot(self) -> list[Event]:
        """Pending events in pop order (what a checkpoint persists)."""
        return [event for _, _, event in sorted(self._heap)]

    @classmethod
    def restore(cls, events: list[Event], next_seq: int) -> "EventQueue":
        """Rebuild a queue from checkpointed events, preserving the
        original ``(time, seq)`` ordering and the sequence counter so
        later pushes sort exactly as they would have in the
        uninterrupted run."""
        queue = cls()
        for event in events:
            if event.seq >= next_seq:
                raise ConfigError(
                    f"event seq {event.seq} not below the restored "
                    f"counter {next_seq}"
                )
            heapq.heappush(queue._heap, (event.time, event.seq, event))
        queue._seq = next_seq
        return queue
