"""Cluster run metrics: fairness, fragmentation, throughput, delay.

Definitions (architecture §15):

* **aggregate FOM** — sum over completed tenants of work done divided
  by residence time (admission to completion, stalls included). Under
  the bandwidth-split contention model every tenant's achieved FOM is
  bounded by its isolated FOM, so the aggregate is bounded by the sum
  of isolated FOMs — the sanity check CI asserts.
* **HBW fragmentation** — per node, ``1 - largest_free/total_free``
  over the extent allocator's hole list; reported as the event-time
  mean (sampled after every event) and the final value.
* **Jain's fairness index** — ``(Σx)² / (n·Σx²)`` over the per-tenant
  efficiency ``x = fom_achieved / fom_isolated``; 1.0 when contention
  is shared perfectly evenly, → 1/n when one tenant absorbs it all.
* **queueing delay** — mean seconds between arrival and admission
  over admitted jobs (0 for jobs admitted on arrival).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ConfigError


def jain_index(values: list[float]) -> float:
    """Jain's fairness index of ``values`` (1.0 for an empty list —
    nothing observed is vacuously fair)."""
    if not values:
        return 1.0
    if any(v < 0 for v in values):
        raise ConfigError("fairness is defined over non-negative values")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(values) * squares)


@dataclass(frozen=True, slots=True)
class TenantOutcome:
    """One tenant's life, as the report sees it."""

    job_id: int
    app: str
    node: str
    hbw_demand: int
    hbw_granted: int
    arrival_time: float
    admission_time: float
    completion_time: float
    #: FOM this tenant would have achieved alone on its node with the
    #: same grant (contention-free reference).
    fom_isolated: float
    #: Work / residence time actually achieved (contention + stalls).
    fom_achieved: float

    @property
    def queueing_delay(self) -> float:
        return self.admission_time - self.arrival_time

    @property
    def efficiency(self) -> float:
        """Fraction of the isolated FOM the tenant actually got."""
        if self.fom_isolated == 0.0:
            return 0.0
        return self.fom_achieved / self.fom_isolated


@dataclass(frozen=True, slots=True)
class Rejection:
    """One request the cluster turned away, with its classification.

    ``reason`` is one of
    :data:`repro.cluster.backpressure.REJECTION_REASONS`:
    ``never-fits`` (demand exceeds every node's whole budget),
    ``shed-queue-depth`` / ``shed-queue-delay`` (backpressure), or
    ``shed-stranded`` (still queued when the run ended).
    """

    job_id: int
    app: str
    time: float
    reason: str


@dataclass(frozen=True, slots=True)
class TenantCasualty:
    """An admitted tenant the cluster lost before completion.

    Casualties are recorded, never silent: the report's accounting
    reconciles arrivals = completed + rejected + casualties. ``reason``
    is ``node-crash`` (home node died and no rescue landed) or
    ``tenant-kill`` (injected mid-residence kill).
    """

    job_id: int
    app: str
    node: str
    time: float
    reason: str
    #: Fraction of the tenant's work done when it was lost.
    progress_fraction: float


@dataclass(frozen=True, slots=True)
class RescueRecord:
    """One successful crash evacuation (tenant re-homed, not lost)."""

    job_id: int
    app: str
    from_node: str
    to_node: str
    time: float
    #: Real bytes re-promoted on the new node, charged at migration
    #: bandwidth against the tenant's progress.
    moved_bytes: int


@dataclass(frozen=True, slots=True)
class ClusterReport:
    """Everything one cluster run produced."""

    n_nodes: int
    n_arrivals: int
    scheduler: str
    strategy: str
    seed: int
    tenants: tuple[TenantOutcome, ...] = ()
    rejections: tuple[Rejection, ...] = ()
    casualties: tuple[TenantCasualty, ...] = ()
    rescues: tuple[RescueRecord, ...] = ()
    #: Event-time mean of the fleet-mean fragmentation.
    mean_fragmentation: float = 0.0
    final_fragmentation: float = 0.0
    #: Real bytes migrated by survivor re-advising over the whole run.
    migrated_bytes: int = 0
    #: Real bytes evicted from HBW by departures.
    evicted_bytes: int = 0
    #: Simulated time of the last event.
    makespan: float = 0.0

    @property
    def aggregate_fom(self) -> float:
        return sum(t.fom_achieved for t in self.tenants)

    @property
    def aggregate_fom_isolated(self) -> float:
        return sum(t.fom_isolated for t in self.tenants)

    @property
    def fairness(self) -> float:
        return jain_index([t.efficiency for t in self.tenants])

    @property
    def mean_queueing_delay(self) -> float:
        if not self.tenants:
            return 0.0
        return sum(t.queueing_delay for t in self.tenants) / len(self.tenants)

    @property
    def rejected(self) -> tuple[int, ...]:
        """Rejected job ids, in rejection order (schema-1 compat view
        over the classified :attr:`rejections`)."""
        return tuple(r.job_id for r in self.rejections)

    @property
    def n_rejected(self) -> int:
        return len(self.rejections)

    @property
    def n_casualties(self) -> int:
        return len(self.casualties)

    @property
    def n_rescued(self) -> int:
        return len(self.rescues)

    @property
    def n_shed(self) -> int:
        return sum(1 for r in self.rejections if r.reason != "never-fits")

    @property
    def n_never_fits(self) -> int:
        return sum(1 for r in self.rejections if r.reason == "never-fits")

    @property
    def accounted(self) -> bool:
        """Does every arrival reconcile to exactly one fate?

        completed + rejected (never-fits and shed) + casualties must
        equal the arrival count, and no job may appear under two
        fates. Rescued tenants are not a fate of their own — a rescue
        re-homes a tenant that then completes (a tenant) or dies
        anyway (a casualty).
        """
        completed = {t.job_id for t in self.tenants}
        rejected = {r.job_id for r in self.rejections}
        lost = {c.job_id for c in self.casualties}
        if completed & rejected or completed & lost or rejected & lost:
            return False
        return (
            len(completed) + len(rejected) + len(lost) == self.n_arrivals
            and len(completed) == len(self.tenants)
            and len(rejected) == len(self.rejections)
            and len(lost) == len(self.casualties)
        )

    def to_dict(self) -> dict:
        return {
            "schema": "repro-cluster/2",
            "n_nodes": self.n_nodes,
            "n_arrivals": self.n_arrivals,
            "scheduler": self.scheduler,
            "strategy": self.strategy,
            "seed": self.seed,
            "aggregate_fom": self.aggregate_fom,
            "aggregate_fom_isolated": self.aggregate_fom_isolated,
            "fairness": self.fairness,
            "mean_fragmentation": self.mean_fragmentation,
            "final_fragmentation": self.final_fragmentation,
            "mean_queueing_delay": self.mean_queueing_delay,
            "rejected": list(self.rejected),
            "rejections": [
                {
                    "job_id": r.job_id,
                    "app": r.app,
                    "time": r.time,
                    "reason": r.reason,
                }
                for r in self.rejections
            ],
            "casualties": [
                {
                    "job_id": c.job_id,
                    "app": c.app,
                    "node": c.node,
                    "time": c.time,
                    "reason": c.reason,
                    "progress_fraction": c.progress_fraction,
                }
                for c in self.casualties
            ],
            "rescues": [
                {
                    "job_id": r.job_id,
                    "app": r.app,
                    "from_node": r.from_node,
                    "to_node": r.to_node,
                    "time": r.time,
                    "moved_bytes": r.moved_bytes,
                }
                for r in self.rescues
            ],
            "accounting": {
                "arrivals": self.n_arrivals,
                "completed": len(self.tenants),
                "rejected": self.n_rejected,
                "never_fits": self.n_never_fits,
                "shed": self.n_shed,
                "casualties": self.n_casualties,
                "rescued": self.n_rescued,
                "reconciled": self.accounted,
            },
            "migrated_bytes": self.migrated_bytes,
            "evicted_bytes": self.evicted_bytes,
            "makespan": self.makespan,
            "tenants": [
                {
                    "job_id": t.job_id,
                    "app": t.app,
                    "node": t.node,
                    "hbw_demand": t.hbw_demand,
                    "hbw_granted": t.hbw_granted,
                    "arrival_time": t.arrival_time,
                    "admission_time": t.admission_time,
                    "completion_time": t.completion_time,
                    "fom_isolated": t.fom_isolated,
                    "fom_achieved": t.fom_achieved,
                }
                for t in self.tenants
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"


@dataclass
class FragmentationTracker:
    """Event-time average of the fleet-mean fragmentation."""

    samples: int = 0
    accumulated: float = 0.0
    last: float = 0.0
    _per_node: dict = field(default_factory=dict)

    def observe(self, per_node: dict[str, float]) -> None:
        self._per_node = dict(per_node)
        mean = (
            sum(per_node.values()) / len(per_node) if per_node else 0.0
        )
        self.samples += 1
        self.accumulated += mean
        self.last = mean

    @property
    def mean(self) -> float:
        if self.samples == 0:
            return 0.0
        return self.accumulated / self.samples

    # -- checkpoint/restore ---------------------------------------------

    def to_state(self) -> dict:
        return {
            "samples": self.samples,
            "accumulated": self.accumulated,
            "last": self.last,
            "per_node": dict(self._per_node),
        }

    @classmethod
    def from_state(cls, state: dict) -> "FragmentationTracker":
        tracker = cls(
            samples=int(state["samples"]),
            accumulated=float(state["accumulated"]),
            last=float(state["last"]),
        )
        tracker._per_node = dict(state.get("per_node", {}))
        return tracker
