"""Cluster nodes: machine + per-node HBW budget + extent allocator.

A node is a :class:`~repro.machine.config.MachineConfig` (the tier
curves the execution model charges against) plus the slice of its fast
tier this cluster makes schedulable. Tenant grants are carved out of
that slice as *contiguous extents* by a first-fit free-list allocator
— contiguity is what makes HBW fragmentation a real phenomenon here:
after churn, the free bytes may be plentiful but scattered, and an
arriving tenant needs one hole big enough for its grant, exactly like
``hbw_malloc`` carving a physically-backed span out of MCDRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.machine.config import MachineConfig, xeon_phi_7250


@dataclass(frozen=True, slots=True)
class Extent:
    """One contiguous carve-out of a node's HBW slice (real bytes)."""

    offset: int
    size: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.size <= 0:
            raise ConfigError(
                f"extent needs offset >= 0 and size > 0, got "
                f"({self.offset}, {self.size})"
            )

    @property
    def end(self) -> int:
        return self.offset + self.size


class ExtentAllocator:
    """First-fit contiguous allocator over ``[0, total)`` real bytes.

    Frees coalesce with both neighbours, so an emptied node always
    returns to one maximal hole. ``largest_free``/``total_free`` feed
    the fragmentation metric: ``1 - largest_free / total_free`` is 0
    when every free byte is reachable by one allocation and approaches
    1 as churn shatters the space.
    """

    def __init__(self, total: int) -> None:
        if total <= 0:
            raise ConfigError(f"allocator needs a positive size, got {total}")
        self.total = total
        #: Sorted disjoint free holes as (offset, size).
        self._free: list[tuple[int, int]] = [(0, total)]

    def alloc(self, size: int) -> Extent | None:
        """Carve ``size`` bytes out of the first hole that fits."""
        if size <= 0:
            raise ConfigError(f"allocation size must be positive, got {size}")
        for i, (offset, hole) in enumerate(self._free):
            if hole >= size:
                if hole == size:
                    del self._free[i]
                else:
                    self._free[i] = (offset + size, hole - size)
                return Extent(offset=offset, size=size)
        return None

    def free(self, extent: Extent) -> None:
        """Return an extent, coalescing with adjacent holes."""
        if extent.end > self.total:
            raise ConfigError(
                f"extent {extent} exceeds allocator size {self.total}"
            )
        for o, s in self._free:
            if o < extent.end and extent.offset < o + s:
                raise ConfigError(
                    f"double free: extent {extent} overlaps hole ({o},{s})"
                )
        holes = sorted(self._free + [(extent.offset, extent.size)])
        merged = [holes[0]]
        for o, s in holes[1:]:
            last_offset, last_size = merged[-1]
            if last_offset + last_size == o:
                merged[-1] = (last_offset, last_size + s)
            else:
                merged.append((o, s))
        self._free = merged

    @property
    def total_free(self) -> int:
        return sum(s for _, s in self._free)

    @property
    def largest_free(self) -> int:
        return max((s for _, s in self._free), default=0)

    @property
    def fragmentation(self) -> float:
        """``1 - largest_free / total_free`` (0.0 when nothing free)."""
        free = self.total_free
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free / free

    def holes(self) -> tuple[tuple[int, int], ...]:
        """Snapshot of the free list (deterministic, for journals)."""
        return tuple(self._free)

    def reset(self) -> None:
        """Forget every grant: back to one maximal hole.

        A node crash loses its MCDRAM contents wholesale — the
        simulator resets the allocator instead of freeing tenant
        extents one by one, because the extents died with the node.
        """
        self._free = [(0, self.total)]

    @classmethod
    def restore(
        cls, total: int, holes: tuple[tuple[int, int], ...] | list
    ) -> "ExtentAllocator":
        """Rebuild an allocator from a checkpointed :meth:`holes`
        snapshot, validating the invariants a live allocator maintains
        (sorted, disjoint, in-range, fully coalesced)."""
        allocator = cls(total)
        free: list[tuple[int, int]] = []
        last_end = -1
        for entry in holes:
            offset, size = int(entry[0]), int(entry[1])
            if offset < 0 or size <= 0 or offset + size > total:
                raise ConfigError(
                    f"checkpointed hole ({offset},{size}) outside "
                    f"[0,{total})"
                )
            if offset < last_end:
                raise ConfigError(
                    f"checkpointed holes unsorted or overlapping at "
                    f"({offset},{size})"
                )
            if offset == last_end:
                raise ConfigError(
                    f"checkpointed holes not coalesced at ({offset},{size})"
                )
            free.append((offset, size))
            last_end = offset + size
        allocator._free = free
        return allocator


@dataclass(frozen=True, slots=True)
class NodeSpec:
    """One schedulable node of the fleet."""

    name: str
    machine: MachineConfig = field(default_factory=xeon_phi_7250)
    #: Real bytes of the node's fast tier this cluster may grant to
    #: tenants. Defaults to the machine's full fast-tier capacity.
    hbw_budget: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("node needs a name")
        budget = self.hbw_budget or self.machine.fast_tier.capacity
        if budget <= 0:
            raise ConfigError(f"node {self.name!r}: budget must be positive")
        if budget > self.machine.fast_tier.capacity:
            raise ConfigError(
                f"node {self.name!r}: budget {budget} exceeds fast-tier "
                f"capacity {self.machine.fast_tier.capacity}"
            )
        object.__setattr__(self, "hbw_budget", budget)


def make_fleet(
    n_nodes: int,
    hbw_budget: int,
    machine: MachineConfig | None = None,
) -> tuple[NodeSpec, ...]:
    """Homogeneous fleet of ``n_nodes`` nodes (``node00``, ...)."""
    if n_nodes < 1:
        raise ConfigError(f"fleet needs at least one node, got {n_nodes}")
    machine = machine or xeon_phi_7250()
    return tuple(
        NodeSpec(name=f"node{i:02d}", machine=machine, hbw_budget=hbw_budget)
        for i in range(n_nodes)
    )
