"""The cluster simulation: joint node + tier placement under churn.

One :class:`ClusterSim` run processes an arrival trace through a
discrete-event loop:

* **arrival** — a scheduler policy picks the node (or queues the
  job), the node grants the largest contiguous HBW extent up to the
  demand, and the existing knapsack advisor decides *which objects*
  of that tenant live in the granted fast budget;
* **completion** — endogenous: each tenant carries its application's
  calibrated work, and progresses at the FOM its current placement
  and co-tenancy deliver, so departures emerge from the performance
  model instead of an exogenous duration draw;
* **contention** — co-resident tenants split each tier's delivered
  bandwidth evenly. Charging tenant ``i`` of ``k`` co-residents its
  traffic against ``B/k`` is identical to charging ``k x`` its
  traffic against ``B``, which is how the existing
  :class:`~repro.machine.performance.ExecutionModel` is reused
  unchanged — and it guarantees co-located FOM never exceeds
  isolated FOM;
* **departure re-advising** — freed HBW first admits queued jobs
  (arrivals outrank expansion), then surviving tenants whose grant
  trails their demand re-run the advisor at the larger budget; the
  placement diff goes through the online layer's
  :class:`~repro.online.migration.HysteresisFilter` and
  :func:`~repro.online.migration.diff_placements`, and promoted
  bytes stall the survivor at the page-migration bandwidth.

Every decision appends one line to a byte-deterministic journal
(sorted site sets, fixed float formats, no wall-clock input), the
cluster analogue of the online daemon's per-window journal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.registry import get_app
from repro.cluster.arrivals import ArrivalStream, JobRequest
from repro.cluster.events import ARRIVAL, COMPLETE, EventQueue, SimClock
from repro.cluster.metrics import (
    ClusterReport,
    FragmentationTracker,
    TenantOutcome,
)
from repro.cluster.node import Extent, ExtentAllocator, NodeSpec
from repro.cluster.scheduler import SchedulerPolicy, get_scheduler
from repro.errors import ConfigError
from repro.machine.performance import (
    MIGRATION_BANDWIDTH_DEFAULT,
    ExecutionModel,
    PlacedTraffic,
)
from repro.online.migration import HysteresisFilter, diff_placements
from repro.pipeline.framework import HybridMemoryFramework
from repro.placement.policies import traffic_for_sites


@dataclass
class Tenant:
    """One admitted job's live state."""

    request: JobRequest
    node: "NodeState"
    extent: Extent
    grant: int
    sites: frozenset[str]
    #: Single-tenant tier split of this tenant's calibrated traffic.
    traffic: PlacedTraffic
    #: Best contention-free FOM over the placements this tenant has
    #: held (the fairness reference; achieved FOM can never beat it).
    fom_isolated: float
    hysteresis: HysteresisFilter
    admission_time: float
    progress: float = 0.0
    rate: float = 0.0
    last_update: float = 0.0
    #: Migration stalls pause progress until this instant.
    stall_until: float = 0.0
    #: Bumped on every reschedule; stale completion events are skipped.
    generation: int = 0

    @property
    def job_id(self) -> int:
        return self.request.job_id

    def sync(self, now: float) -> None:
        """Fold progress up to ``now`` (stall time earns nothing)."""
        start = max(self.last_update, min(self.stall_until, now))
        if now > start:
            self.progress += self.rate * (now - start)
        self.last_update = now


@dataclass
class NodeState:
    """One node's live tenancy and HBW hole structure."""

    spec: NodeSpec
    allocator: ExtentAllocator
    tenants: dict[int, Tenant] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def largest_free(self) -> int:
        return self.allocator.largest_free

    @property
    def total_free(self) -> int:
        return self.allocator.total_free

    @property
    def n_tenants(self) -> int:
        return len(self.tenants)

    def residents(self) -> list[Tenant]:
        """Tenants in deterministic (job id) order."""
        return [self.tenants[j] for j in sorted(self.tenants)]


def _fmt_sites(sites: frozenset[str] | tuple[str, ...]) -> str:
    ordered = sorted(sites) if isinstance(sites, frozenset) else list(sites)
    return ",".join(ordered) if ordered else "-"


class ClusterSim:
    """Seeded multi-tenant placement simulation over a node fleet."""

    def __init__(
        self,
        nodes: tuple[NodeSpec, ...],
        arrivals: ArrivalStream,
        scheduler: SchedulerPolicy | str = "first-fit",
        strategy: str = "misses-0%",
        min_grant_fraction: float = 0.5,
        confirm_windows: int = 1,
        migration_bandwidth: float = MIGRATION_BANDWIDTH_DEFAULT,
        clock: SimClock | None = None,
    ) -> None:
        if not nodes:
            raise ConfigError("cluster needs at least one node")
        names = [n.name for n in nodes]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate node names: {names}")
        if not 0.0 < min_grant_fraction <= 1.0:
            raise ConfigError(
                f"min grant fraction must be in (0,1], got "
                f"{min_grant_fraction}"
            )
        if migration_bandwidth <= 0:
            raise ConfigError("migration bandwidth must be positive")
        self.scheduler_name = (
            scheduler if isinstance(scheduler, str) else scheduler.__name__
        )
        self.scheduler = (
            get_scheduler(scheduler) if isinstance(scheduler, str) else scheduler
        )
        self.arrivals = arrivals
        self.strategy = strategy
        self.min_grant_fraction = min_grant_fraction
        self.confirm_windows = confirm_windows
        self.migration_bandwidth = migration_bandwidth
        self.clock = clock or SimClock()
        self.nodes = [
            NodeState(spec=spec, allocator=ExtentAllocator(spec.hbw_budget))
            for spec in nodes
        ]
        self.events = EventQueue()
        self.queue: list[JobRequest] = []
        self.journal: list[str] = []
        self.outcomes: list[TenantOutcome] = []
        self.rejected: list[int] = []
        self.migrated_bytes = 0
        self.evicted_bytes = 0
        self.fragmentation = FragmentationTracker()
        #: One framework per (app, machine) — profile/analyze once.
        self._frameworks: dict[tuple[str, str], HybridMemoryFramework] = {}
        #: Advisor decisions are pure in (app, machine, grant,
        #: strategy); memoised so churny fleets stay cheap.
        self._sites_cache: dict[tuple[str, str, int, str], frozenset[str]] = {}
        self._models: dict[str, ExecutionModel] = {}

    # -- shared per-app machinery ---------------------------------------

    def _framework(self, app_name: str, node: NodeState) -> HybridMemoryFramework:
        key = (app_name, node.spec.machine.name)
        fw = self._frameworks.get(key)
        if fw is None:
            fw = HybridMemoryFramework(
                get_app(app_name),
                machine=node.spec.machine,
                seed=self.arrivals.seed,
            )
            self._frameworks[key] = fw
        return fw

    def _placement_sites(
        self, app_name: str, node: NodeState, grant: int
    ) -> frozenset[str]:
        key = (app_name, node.spec.machine.name, grant, self.strategy)
        sites = self._sites_cache.get(key)
        if sites is None:
            fw = self._framework(app_name, node)
            sites = fw.placement_sites(grant, self.strategy)
            self._sites_cache[key] = sites
        return sites

    def _model(self, node: NodeState) -> ExecutionModel:
        machine = node.spec.machine
        model = self._models.get(machine.name)
        if model is None:
            model = ExecutionModel(machine)
            self._models[machine.name] = model
        return model

    def _cost(self, tenant: Tenant, co_residents: int):
        """Tenant's run cost when ``co_residents`` share its node.

        An even bandwidth split ``B/k`` is charged by scaling the
        tenant's traffic by ``k`` against the full-node saturation
        curve — ``k * bytes / B == bytes / (B/k)``.
        """
        traffic = tenant.traffic
        if co_residents > 1:
            traffic = PlacedTraffic(
                by_tier={
                    name: nbytes * co_residents
                    for name, nbytes in traffic.by_tier.items()
                }
            )
        fw = self._framework(tenant.request.app, tenant.node)
        cal = fw.app.calibration
        return self._model(tenant.node).cost(
            traffic,
            compute_time=cal.compute_time,
            work=cal.work,
            cores=tenant.node.spec.machine.cores,
        )

    # -- journal ---------------------------------------------------------

    def _log(self, line: str) -> None:
        self.journal.append(f"t={self.clock.now:.6f} {line}")

    def _observe_fragmentation(self) -> None:
        self.fragmentation.observe(
            {n.name: n.allocator.fragmentation for n in self.nodes}
        )

    # -- scheduling mechanics -------------------------------------------

    def _min_grant(self, request: JobRequest) -> int:
        return max(1, int(request.hbw_demand * self.min_grant_fraction))

    def _retime_node(self, node: NodeState) -> None:
        """Re-derive every resident's rate and completion time."""
        now = self.clock.now
        k = node.n_tenants
        for tenant in node.residents():
            tenant.sync(now)
            tenant.rate = self._cost(tenant, k).fom
            fw = self._framework(tenant.request.app, node)
            remaining = max(0.0, fw.app.calibration.work - tenant.progress)
            finish = max(now, tenant.stall_until) + remaining / tenant.rate
            tenant.generation += 1
            self.events.push(
                finish, COMPLETE, (tenant.job_id, tenant.generation)
            )

    def _admit(self, request: JobRequest, node: NodeState) -> Tenant:
        now = self.clock.now
        grant = min(request.hbw_demand, node.largest_free)
        extent = node.allocator.alloc(grant)
        if extent is None:  # pragma: no cover - largest_free guarantees fit
            raise ConfigError(
                f"node {node.name} lost the hole for job {request.job_id}"
            )
        sites = self._placement_sites(request.app, node, grant)
        fw = self._framework(request.app, node)
        traffic = traffic_for_sites(
            fw.app, node.spec.machine, fw.profile(), sites
        )
        hysteresis = HysteresisFilter(self.confirm_windows)
        for _ in range(self.confirm_windows):
            hysteresis.update(sites)
        tenant = Tenant(
            request=request,
            node=node,
            extent=extent,
            grant=grant,
            sites=sites,
            traffic=traffic,
            fom_isolated=0.0,
            hysteresis=hysteresis,
            admission_time=now,
            last_update=now,
        )
        tenant.fom_isolated = self._cost(tenant, 1).fom
        node.tenants[request.job_id] = tenant
        self._log(
            f"admit job={request.job_id} node={node.name} grant={grant} "
            f"offset={extent.offset} sites={_fmt_sites(sites)}"
        )
        return tenant

    def _try_admit(self, request: JobRequest, queued: bool) -> bool:
        """Place one request; queue or reject it if no node fits now."""
        node = self.scheduler(self.nodes, self._min_grant(request))
        if node is not None:
            if queued:
                delay = self.clock.now - request.arrival_time
                self._log(
                    f"dequeue job={request.job_id} wait={delay:.6f}"
                )
            self._admit(request, node)
            self._retime_node(node)
            return True
        if queued:
            return False
        if self._min_grant(request) > max(
            n.spec.hbw_budget for n in self.nodes
        ):
            self.rejected.append(request.job_id)
            self._log(
                f"reject job={request.job_id} app={request.app} "
                f"demand={request.hbw_demand} reason=never-fits"
            )
        else:
            self.queue.append(request)
            self._log(
                f"queue job={request.job_id} app={request.app} "
                f"demand={request.hbw_demand}"
            )
        return False

    def _drain_queue(self) -> None:
        """FIFO pass over waiting jobs after capacity was freed."""
        still_waiting: list[JobRequest] = []
        for request in self.queue:
            if not self._try_admit(request, queued=True):
                still_waiting.append(request)
        self.queue = still_waiting

    def _readvise_survivors(self, node: NodeState) -> None:
        """Grow under-granted survivors into the freed HBW."""
        for tenant in node.residents():
            if tenant.grant >= tenant.request.hbw_demand:
                continue
            node.allocator.free(tenant.extent)
            new_grant = min(tenant.request.hbw_demand, node.largest_free)
            extent = node.allocator.alloc(max(new_grant, tenant.grant))
            if extent is None:  # pragma: no cover - freed hole refits
                raise ConfigError(
                    f"node {node.name} cannot re-seat job {tenant.job_id}"
                )
            if extent.size == tenant.grant:
                tenant.extent = extent
                continue
            old_grant, tenant.extent = tenant.grant, extent
            tenant.grant = extent.size
            advised = self._placement_sites(
                tenant.request.app, node, tenant.grant
            )
            applied = tenant.hysteresis.update(advised)
            promotions, demotions = diff_placements(tenant.sites, applied)
            fw = self._framework(tenant.request.app, node)
            moved = sum(
                fw.app.find_object(site).size for site in promotions
            )
            tenant.sites = applied
            tenant.traffic = traffic_for_sites(
                fw.app, node.spec.machine, fw.profile(), applied
            )
            tenant.fom_isolated = max(
                tenant.fom_isolated, self._cost(tenant, 1).fom
            )
            if moved:
                self.migrated_bytes += moved
                stall = moved / self.migration_bandwidth
                tenant.stall_until = (
                    max(tenant.stall_until, self.clock.now) + stall
                )
            self._log(
                f"readvise job={tenant.job_id} node={node.name} "
                f"grant={old_grant}->{tenant.grant} "
                f"promote={_fmt_sites(promotions)} "
                f"demote={_fmt_sites(demotions)} migrated={moved}"
            )

    # -- event handlers --------------------------------------------------

    def _on_arrival(self, request: JobRequest) -> None:
        self._log(
            f"arrive job={request.job_id} app={request.app} "
            f"demand={request.hbw_demand}"
        )
        self._try_admit(request, queued=False)

    def _on_complete(self, job_id: int, generation: int) -> None:
        node = next(
            (n for n in self.nodes if job_id in n.tenants), None
        )
        if node is None:
            return  # already departed (stale event)
        tenant = node.tenants[job_id]
        if tenant.generation != generation:
            return  # superseded by a retime
        now = self.clock.now
        tenant.sync(now)
        del node.tenants[job_id]
        node.allocator.free(tenant.extent)
        evicted = sum(
            self._framework(tenant.request.app, node)
            .app.find_object(site)
            .size
            for site in sorted(tenant.sites)
        )
        self.evicted_bytes += evicted
        residence = now - tenant.admission_time
        fw = self._framework(tenant.request.app, node)
        achieved = (
            fw.app.calibration.work / residence if residence > 0 else 0.0
        )
        self.outcomes.append(
            TenantOutcome(
                job_id=tenant.job_id,
                app=tenant.request.app,
                node=node.name,
                hbw_demand=tenant.request.hbw_demand,
                hbw_granted=tenant.grant,
                arrival_time=tenant.request.arrival_time,
                admission_time=tenant.admission_time,
                completion_time=now,
                fom_isolated=tenant.fom_isolated,
                fom_achieved=achieved,
            )
        )
        self._log(
            f"depart job={job_id} node={node.name} evicted={evicted} "
            f"fom={achieved:.6f}"
        )
        self._drain_queue()
        self._readvise_survivors(node)
        self._retime_node(node)

    # -- run -------------------------------------------------------------

    def run(self) -> ClusterReport:
        """Process the whole trace; returns the populated report."""
        trace = self.arrivals.generate()
        self.journal.append(
            f"# repro-cluster nodes={len(self.nodes)} "
            f"arrivals={len(trace)} seed={self.arrivals.seed} "
            f"scheduler={self.scheduler_name} strategy={self.strategy} "
            f"rate={self.arrivals.rate:.6f}"
        )
        for request in trace:
            self.events.push(request.arrival_time, ARRIVAL, request)
        while self.events:
            event = self.events.pop()
            self.clock.advance(event.time)
            if event.kind == ARRIVAL:
                self._on_arrival(event.payload)
            elif event.kind == COMPLETE:
                self._on_complete(*event.payload)
            else:  # pragma: no cover
                raise ConfigError(f"unknown event kind {event.kind!r}")
            self._observe_fragmentation()
        report = ClusterReport(
            n_nodes=len(self.nodes),
            n_arrivals=len(trace),
            scheduler=self.scheduler_name,
            strategy=self.strategy,
            seed=self.arrivals.seed,
            tenants=tuple(
                sorted(self.outcomes, key=lambda t: t.job_id)
            ),
            rejected=tuple(self.rejected),
            mean_fragmentation=self.fragmentation.mean,
            final_fragmentation=self.fragmentation.last,
            migrated_bytes=self.migrated_bytes,
            evicted_bytes=self.evicted_bytes,
            makespan=self.clock.now,
        )
        self.journal.append(
            f"fragmentation mean={report.mean_fragmentation:.6f} "
            f"final={report.final_fragmentation:.6f}"
        )
        self.journal.append(
            f"fairness={report.fairness:.6f} "
            f"aggregate_fom={report.aggregate_fom:.6f} "
            f"isolated={report.aggregate_fom_isolated:.6f} "
            f"rejected={report.n_rejected} "
            f"migrated_bytes={report.migrated_bytes} "
            f"evicted_bytes={report.evicted_bytes}"
        )
        return report

    def journal_text(self) -> str:
        """The full decision journal (what CI byte-compares)."""
        return "\n".join(self.journal) + "\n"


def run_cluster(
    nodes: tuple[NodeSpec, ...],
    arrivals: ArrivalStream,
    scheduler: str = "first-fit",
    strategy: str = "misses-0%",
    **kwargs,
) -> tuple[ClusterReport, str]:
    """One-call convenience: (report, journal text)."""
    sim = ClusterSim(
        nodes, arrivals, scheduler=scheduler, strategy=strategy, **kwargs
    )
    report = sim.run()
    return report, sim.journal_text()
