"""The cluster simulation: joint node + tier placement under churn.

One :class:`ClusterSim` run processes an arrival trace through a
discrete-event loop:

* **arrival** — a scheduler policy picks the node (or queues the
  job), the node grants the largest contiguous HBW extent up to the
  demand, and the existing knapsack advisor decides *which objects*
  of that tenant live in the granted fast budget;
* **completion** — endogenous: each tenant carries its application's
  calibrated work, and progresses at the FOM its current placement
  and co-tenancy deliver, so departures emerge from the performance
  model instead of an exogenous duration draw;
* **contention** — co-resident tenants split each tier's delivered
  bandwidth evenly. Charging tenant ``i`` of ``k`` co-residents its
  traffic against ``B/k`` is identical to charging ``k x`` its
  traffic against ``B``, which is how the existing
  :class:`~repro.machine.performance.ExecutionModel` is reused
  unchanged — and it guarantees co-located FOM never exceeds
  isolated FOM;
* **departure re-advising** — freed HBW first admits queued jobs
  (arrivals outrank expansion), then surviving tenants whose grant
  trails their demand re-run the advisor at the larger budget; the
  placement diff goes through the online layer's
  :class:`~repro.online.migration.HysteresisFilter` and
  :func:`~repro.online.migration.diff_placements`, and promoted
  bytes stall the survivor at the page-migration bandwidth.

Every decision appends one line to a byte-deterministic journal
(sorted site sets, fixed float formats, no wall-clock input), the
cluster analogue of the online daemon's per-window journal.

The **fault domain** (architecture §16) rides the same event loop:
seeded ``node_crash`` / ``node_drain`` / ``node_recover`` /
``tenant_kill`` events from the :class:`~repro.faults.injector.
FaultInjector` are first-class heap entries; a crash evacuates
surviving tenants through the scheduler under a per-node rescue
budget (unrescued tenants become recorded casualties, never silent
losses); a :class:`~repro.cluster.backpressure.BackpressurePolicy`
sheds or down-grants queued admissions under overload; and a
per-event-batch CRC-checksummed checkpoint makes the whole run
SIGKILL-safe — ``--resume`` replays to a byte-identical journal.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field, replace

from repro.apps.registry import get_app
from repro.cluster.arrivals import ArrivalStream, JobRequest
from repro.cluster.backpressure import (
    REASON_NEVER_FITS,
    REASON_SHED_DELAY,
    REASON_SHED_DEPTH,
    REASON_SHED_STRANDED,
    BackpressurePolicy,
)
from repro.cluster.checkpoint import (
    cluster_session_key,
    load_cluster_checkpoint,
    save_cluster_checkpoint,
)
from repro.cluster.events import (
    ARRIVAL,
    COMPLETE,
    NODE_CRASH,
    NODE_DRAIN,
    NODE_RECOVER,
    TENANT_KILL,
    Event,
    EventQueue,
    SimClock,
)
from repro.cluster.metrics import (
    ClusterReport,
    FragmentationTracker,
    Rejection,
    RescueRecord,
    TenantCasualty,
    TenantOutcome,
)
from repro.cluster.node import Extent, ExtentAllocator, NodeSpec
from repro.cluster.scheduler import SchedulerPolicy, get_scheduler
from repro.errors import CheckpointError, ConfigError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.machine.performance import (
    MIGRATION_BANDWIDTH_DEFAULT,
    ExecutionModel,
    PlacedTraffic,
)
from repro.online.checkpoint import CHECKPOINT_SCHEMA_VERSION
from repro.online.migration import HysteresisFilter, diff_placements
from repro.pipeline.framework import HybridMemoryFramework
from repro.placement.policies import traffic_for_sites

#: Node lifecycle states.
NODE_UP = "up"
NODE_DRAINING = "draining"
NODE_DOWN = "down"


@dataclass
class Tenant:
    """One admitted job's live state."""

    request: JobRequest
    node: "NodeState"
    extent: Extent
    grant: int
    sites: frozenset[str]
    #: Single-tenant tier split of this tenant's calibrated traffic.
    traffic: PlacedTraffic
    #: Best contention-free FOM over the placements this tenant has
    #: held (the fairness reference; achieved FOM can never beat it).
    fom_isolated: float
    hysteresis: HysteresisFilter
    admission_time: float
    progress: float = 0.0
    rate: float = 0.0
    last_update: float = 0.0
    #: Migration stalls pause progress until this instant.
    stall_until: float = 0.0
    #: Bumped on every reschedule; stale completion events are skipped.
    generation: int = 0

    @property
    def job_id(self) -> int:
        return self.request.job_id

    def sync(self, now: float) -> None:
        """Fold progress up to ``now`` (stall time earns nothing)."""
        start = max(self.last_update, min(self.stall_until, now))
        if now > start:
            self.progress += self.rate * (now - start)
        self.last_update = now


@dataclass
class NodeState:
    """One node's live tenancy and HBW hole structure."""

    spec: NodeSpec
    allocator: ExtentAllocator
    tenants: dict[int, Tenant] = field(default_factory=dict)
    #: Lifecycle: ``up`` (schedulable), ``draining`` (residents bleed
    #: out, no admissions), ``down`` (crashed; MCDRAM contents lost).
    status: str = NODE_UP

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def largest_free(self) -> int:
        return self.allocator.largest_free

    @property
    def total_free(self) -> int:
        return self.allocator.total_free

    @property
    def n_tenants(self) -> int:
        return len(self.tenants)

    def residents(self) -> list[Tenant]:
        """Tenants in deterministic (job id) order."""
        return [self.tenants[j] for j in sorted(self.tenants)]


def _fmt_sites(sites: frozenset[str] | tuple[str, ...]) -> str:
    ordered = sorted(sites) if isinstance(sites, frozenset) else list(sites)
    return ",".join(ordered) if ordered else "-"


class ClusterSim:
    """Seeded multi-tenant placement simulation over a node fleet."""

    def __init__(
        self,
        nodes: tuple[NodeSpec, ...],
        arrivals: ArrivalStream,
        scheduler: SchedulerPolicy | str = "first-fit",
        strategy: str = "misses-0%",
        min_grant_fraction: float = 0.5,
        confirm_windows: int = 1,
        migration_bandwidth: float = MIGRATION_BANDWIDTH_DEFAULT,
        clock: SimClock | None = None,
        fault_plan: FaultPlan | None = None,
        backpressure: BackpressurePolicy | None = None,
        rescue_budget: int | None = None,
        checkpoint_dir: str | None = None,
        resume: bool = False,
        checkpoint_every: int = 1,
        event_pause_seconds: float = 0.0,
    ) -> None:
        if not nodes:
            raise ConfigError("cluster needs at least one node")
        names = [n.name for n in nodes]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate node names: {names}")
        if not 0.0 < min_grant_fraction <= 1.0:
            raise ConfigError(
                f"min grant fraction must be in (0,1], got "
                f"{min_grant_fraction}"
            )
        if migration_bandwidth <= 0:
            raise ConfigError("migration bandwidth must be positive")
        if resume and checkpoint_dir is None:
            raise ConfigError(
                "--resume needs --checkpoint-dir: there is no checkpoint "
                "to resume from without one"
            )
        if rescue_budget is not None and rescue_budget <= 0:
            raise ConfigError(
                f"rescue budget must be positive bytes, got {rescue_budget}"
            )
        if checkpoint_every < 1:
            raise ConfigError(
                f"checkpoint cadence must be >= 1 events, got "
                f"{checkpoint_every}"
            )
        if event_pause_seconds < 0:
            raise ConfigError(
                f"event pause must be >= 0, got {event_pause_seconds}"
            )
        self.scheduler_name = (
            scheduler if isinstance(scheduler, str) else scheduler.__name__
        )
        self.scheduler = (
            get_scheduler(scheduler) if isinstance(scheduler, str) else scheduler
        )
        self.fault_plan = fault_plan
        self.injector = FaultInjector(fault_plan) if fault_plan else None
        if (
            fault_plan is not None
            and fault_plan.overload_burst_factor > 1.0
            and fault_plan.overload_burst_fraction > 0
        ):
            # The burst is part of the load, not a runtime mutation:
            # fold it into the stream so determinism (and the session
            # key) sees the bursted trace.
            arrivals = replace(
                arrivals,
                burst_factor=fault_plan.overload_burst_factor,
                burst_fraction=fault_plan.overload_burst_fraction,
            )
        self.arrivals = arrivals
        self.strategy = strategy
        self.min_grant_fraction = min_grant_fraction
        self.confirm_windows = confirm_windows
        self.migration_bandwidth = migration_bandwidth
        self.backpressure = backpressure or BackpressurePolicy()
        self.rescue_budget = rescue_budget
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.checkpoint_every = checkpoint_every
        self.event_pause_seconds = event_pause_seconds
        self.clock = clock or SimClock()
        self.nodes = [
            NodeState(spec=spec, allocator=ExtentAllocator(spec.hbw_budget))
            for spec in nodes
        ]
        self.events = EventQueue()
        self.queue: list[JobRequest] = []
        self.journal: list[str] = []
        self.outcomes: list[TenantOutcome] = []
        self.rejections: list[Rejection] = []
        self.casualties: list[TenantCasualty] = []
        self.rescues: list[RescueRecord] = []
        self.migrated_bytes = 0
        self.evicted_bytes = 0
        self.fragmentation = FragmentationTracker()
        self._events_processed = 0
        self._finalized = False
        self._session: str | None = None
        #: One framework per (app, machine) — profile/analyze once.
        self._frameworks: dict[tuple[str, str], HybridMemoryFramework] = {}
        #: Advisor decisions are pure in (app, machine, grant,
        #: strategy); memoised so churny fleets stay cheap.
        self._sites_cache: dict[tuple[str, str, int, str], frozenset[str]] = {}
        self._models: dict[str, ExecutionModel] = {}

    # -- shared per-app machinery ---------------------------------------

    def _framework(self, app_name: str, node: NodeState) -> HybridMemoryFramework:
        key = (app_name, node.spec.machine.name)
        fw = self._frameworks.get(key)
        if fw is None:
            fw = HybridMemoryFramework(
                get_app(app_name),
                machine=node.spec.machine,
                seed=self.arrivals.seed,
            )
            self._frameworks[key] = fw
        return fw

    def _placement_sites(
        self, app_name: str, node: NodeState, grant: int
    ) -> frozenset[str]:
        key = (app_name, node.spec.machine.name, grant, self.strategy)
        sites = self._sites_cache.get(key)
        if sites is None:
            fw = self._framework(app_name, node)
            sites = fw.placement_sites(grant, self.strategy)
            self._sites_cache[key] = sites
        return sites

    def _model(self, node: NodeState) -> ExecutionModel:
        machine = node.spec.machine
        model = self._models.get(machine.name)
        if model is None:
            model = ExecutionModel(machine)
            self._models[machine.name] = model
        return model

    def _cost(self, tenant: Tenant, co_residents: int):
        """Tenant's run cost when ``co_residents`` share its node.

        An even bandwidth split ``B/k`` is charged by scaling the
        tenant's traffic by ``k`` against the full-node saturation
        curve — ``k * bytes / B == bytes / (B/k)``.
        """
        traffic = tenant.traffic
        if co_residents > 1:
            traffic = PlacedTraffic(
                by_tier={
                    name: nbytes * co_residents
                    for name, nbytes in traffic.by_tier.items()
                }
            )
        fw = self._framework(tenant.request.app, tenant.node)
        cal = fw.app.calibration
        return self._model(tenant.node).cost(
            traffic,
            compute_time=cal.compute_time,
            work=cal.work,
            cores=tenant.node.spec.machine.cores,
        )

    # -- journal ---------------------------------------------------------

    def _log(self, line: str) -> None:
        self.journal.append(f"t={self.clock.now:.6f} {line}")

    def _observe_fragmentation(self) -> None:
        self.fragmentation.observe(
            {n.name: n.allocator.fragmentation for n in self.nodes}
        )

    # -- scheduling mechanics -------------------------------------------

    def _min_grant(self, request: JobRequest) -> int:
        return max(1, int(request.hbw_demand * self.min_grant_fraction))

    def _up_nodes(self) -> list[NodeState]:
        """Nodes a scheduler policy may admit into (declaration
        order). Draining and down nodes take no new tenants."""
        return [n for n in self.nodes if n.status == NODE_UP]

    def _node(self, name: str) -> NodeState:
        for node in self.nodes:
            if node.name == name:
                return node
        raise ConfigError(f"unknown node {name!r}")  # pragma: no cover

    def _reject(self, request: JobRequest, reason: str) -> None:
        self.rejections.append(
            Rejection(
                job_id=request.job_id,
                app=request.app,
                time=self.clock.now,
                reason=reason,
            )
        )
        verb = "reject" if reason == REASON_NEVER_FITS else "shed"
        self._log(
            f"{verb} job={request.job_id} app={request.app} "
            f"demand={request.hbw_demand} reason={reason}"
        )

    def _retime_node(self, node: NodeState) -> None:
        """Re-derive every resident's rate and completion time."""
        now = self.clock.now
        k = node.n_tenants
        for tenant in node.residents():
            tenant.sync(now)
            tenant.rate = self._cost(tenant, k).fom
            fw = self._framework(tenant.request.app, node)
            remaining = max(0.0, fw.app.calibration.work - tenant.progress)
            finish = max(now, tenant.stall_until) + remaining / tenant.rate
            tenant.generation += 1
            self.events.push(
                finish, COMPLETE, (tenant.job_id, tenant.generation)
            )

    def _admit(self, request: JobRequest, node: NodeState) -> Tenant:
        now = self.clock.now
        grant = min(request.hbw_demand, node.largest_free)
        extent = node.allocator.alloc(grant)
        if extent is None:  # pragma: no cover - largest_free guarantees fit
            raise ConfigError(
                f"node {node.name} lost the hole for job {request.job_id}"
            )
        sites = self._placement_sites(request.app, node, grant)
        fw = self._framework(request.app, node)
        traffic = traffic_for_sites(
            fw.app, node.spec.machine, fw.profile(), sites
        )
        hysteresis = HysteresisFilter(self.confirm_windows)
        for _ in range(self.confirm_windows):
            hysteresis.update(sites)
        tenant = Tenant(
            request=request,
            node=node,
            extent=extent,
            grant=grant,
            sites=sites,
            traffic=traffic,
            fom_isolated=0.0,
            hysteresis=hysteresis,
            admission_time=now,
            last_update=now,
        )
        tenant.fom_isolated = self._cost(tenant, 1).fom
        node.tenants[request.job_id] = tenant
        self._log(
            f"admit job={request.job_id} node={node.name} grant={grant} "
            f"offset={extent.offset} sites={_fmt_sites(sites)}"
        )
        if (
            self.injector is not None
            and self.fault_plan.tenant_kill_rate > 0
            and tenant.fom_isolated > 0
        ):
            frac = self.injector.tenant_kill_fraction(request.job_id)
            if frac is not None:
                fw = self._framework(request.app, node)
                kill_at = now + frac * (
                    fw.app.calibration.work / tenant.fom_isolated
                )
                self.events.push(kill_at, TENANT_KILL, request.job_id)
                self._log(
                    f"schedule-kill job={request.job_id} at={kill_at:.6f}"
                )
        return tenant

    def _select_node(self, request: JobRequest) -> NodeState | None:
        """Pick a home for the request — at the normal minimum grant
        first, then (if backpressure allows) at the down-granted bar."""
        eligible = self._up_nodes()
        node = self.scheduler(eligible, self._min_grant(request))
        if node is not None:
            return node
        reduced = self.backpressure.down_grant(request.hbw_demand)
        if reduced is not None and reduced < self._min_grant(request):
            node = self.scheduler(eligible, reduced)
            if node is not None:
                self._log(
                    f"downgrant job={request.job_id} "
                    f"min={self._min_grant(request)}->{reduced}"
                )
                return node
        return None

    def _try_admit(self, request: JobRequest, queued: bool) -> bool:
        """Place one request; queue, shed or reject it if no node
        fits now."""
        node = self._select_node(request)
        if node is not None:
            if queued:
                delay = self.clock.now - request.arrival_time
                self._log(
                    f"dequeue job={request.job_id} wait={delay:.6f}"
                )
            self._admit(request, node)
            self._retime_node(node)
            return True
        if queued:
            return False
        if self._min_grant(request) > max(
            n.spec.hbw_budget for n in self.nodes
        ):
            self._reject(request, REASON_NEVER_FITS)
        elif self.backpressure.sheds_at_depth(len(self.queue)):
            self._reject(request, REASON_SHED_DEPTH)
        else:
            self.queue.append(request)
            self._log(
                f"queue job={request.job_id} app={request.app} "
                f"demand={request.hbw_demand}"
            )
        return False

    def _drain_queue(self) -> None:
        """FIFO pass over waiting jobs after capacity was freed."""
        still_waiting: list[JobRequest] = []
        for request in self.queue:
            if not self._try_admit(request, queued=True):
                still_waiting.append(request)
        self.queue = still_waiting

    def _shed_overdue(self) -> None:
        """Backpressure's delay dial: shed queued requests that have
        waited past the threshold (classified, logged, reconciled)."""
        if self.backpressure.max_queue_delay is None or not self.queue:
            return
        now = self.clock.now
        keep: list[JobRequest] = []
        for request in self.queue:
            if self.backpressure.overdue(request.arrival_time, now):
                self._reject(request, REASON_SHED_DELAY)
            else:
                keep.append(request)
        self.queue = keep

    def _readvise_survivors(self, node: NodeState) -> None:
        """Grow under-granted survivors into the freed HBW."""
        for tenant in node.residents():
            if tenant.grant >= tenant.request.hbw_demand:
                continue
            node.allocator.free(tenant.extent)
            new_grant = min(tenant.request.hbw_demand, node.largest_free)
            extent = node.allocator.alloc(max(new_grant, tenant.grant))
            if extent is None:  # pragma: no cover - freed hole refits
                raise ConfigError(
                    f"node {node.name} cannot re-seat job {tenant.job_id}"
                )
            if extent.size == tenant.grant:
                tenant.extent = extent
                continue
            old_grant, tenant.extent = tenant.grant, extent
            tenant.grant = extent.size
            advised = self._placement_sites(
                tenant.request.app, node, tenant.grant
            )
            applied = tenant.hysteresis.update(advised)
            promotions, demotions = diff_placements(tenant.sites, applied)
            fw = self._framework(tenant.request.app, node)
            moved = sum(
                fw.app.find_object(site).size for site in promotions
            )
            tenant.sites = applied
            tenant.traffic = traffic_for_sites(
                fw.app, node.spec.machine, fw.profile(), applied
            )
            tenant.fom_isolated = max(
                tenant.fom_isolated, self._cost(tenant, 1).fom
            )
            if moved:
                self.migrated_bytes += moved
                stall = moved / self.migration_bandwidth
                tenant.stall_until = (
                    max(tenant.stall_until, self.clock.now) + stall
                )
            self._log(
                f"readvise job={tenant.job_id} node={node.name} "
                f"grant={old_grant}->{tenant.grant} "
                f"promote={_fmt_sites(promotions)} "
                f"demote={_fmt_sites(demotions)} migrated={moved}"
            )

    # -- event handlers --------------------------------------------------

    def _on_arrival(self, request: JobRequest) -> None:
        self._log(
            f"arrive job={request.job_id} app={request.app} "
            f"demand={request.hbw_demand}"
        )
        self._try_admit(request, queued=False)

    def _on_complete(self, job_id: int, generation: int) -> None:
        node = next(
            (n for n in self.nodes if job_id in n.tenants), None
        )
        if node is None:
            return  # already departed (stale event)
        tenant = node.tenants[job_id]
        if tenant.generation != generation:
            return  # superseded by a retime
        now = self.clock.now
        tenant.sync(now)
        del node.tenants[job_id]
        node.allocator.free(tenant.extent)
        evicted = sum(
            self._framework(tenant.request.app, node)
            .app.find_object(site)
            .size
            for site in sorted(tenant.sites)
        )
        self.evicted_bytes += evicted
        residence = now - tenant.admission_time
        fw = self._framework(tenant.request.app, node)
        achieved = (
            fw.app.calibration.work / residence if residence > 0 else 0.0
        )
        self.outcomes.append(
            TenantOutcome(
                job_id=tenant.job_id,
                app=tenant.request.app,
                node=node.name,
                hbw_demand=tenant.request.hbw_demand,
                hbw_granted=tenant.grant,
                arrival_time=tenant.request.arrival_time,
                admission_time=tenant.admission_time,
                completion_time=now,
                fom_isolated=tenant.fom_isolated,
                fom_achieved=achieved,
            )
        )
        self._log(
            f"depart job={job_id} node={node.name} evicted={evicted} "
            f"fom={achieved:.6f}"
        )
        self._drain_queue()
        if node.status == NODE_UP:
            self._readvise_survivors(node)
        self._retime_node(node)

    # -- fault-domain event handlers -------------------------------------

    def _casualty(self, tenant: Tenant, node_name: str, reason: str) -> None:
        fw = self._framework(tenant.request.app, tenant.node)
        work = fw.app.calibration.work
        fraction = min(1.0, tenant.progress / work) if work > 0 else 0.0
        self.casualties.append(
            TenantCasualty(
                job_id=tenant.job_id,
                app=tenant.request.app,
                node=node_name,
                time=self.clock.now,
                reason=reason,
                progress_fraction=fraction,
            )
        )
        self._log(
            f"casualty job={tenant.job_id} node={node_name} "
            f"reason={reason} progress={fraction:.6f}"
        )

    def _rescue(self, tenant: Tenant, budgets: dict[str, int | None]) -> bool:
        """Re-home one crash victim through the scheduler, bounded by
        the per-node rescue budgets. Returns True when it landed."""
        request = tenant.request
        min_grant = self._min_grant(request)
        candidates = [
            n
            for n in self._up_nodes()
            if budgets.get(n.name) is None or budgets[n.name] >= min_grant
        ]
        target = self.scheduler(candidates, min_grant)
        if target is None:
            return False
        budget_left = budgets.get(target.name)
        grant = min(request.hbw_demand, target.largest_free)
        if budget_left is not None:
            grant = min(grant, budget_left)
            budgets[target.name] = budget_left - grant
        extent = target.allocator.alloc(grant)
        if extent is None:  # pragma: no cover - largest_free guarantees fit
            raise ConfigError(
                f"node {target.name} lost the hole rescuing job "
                f"{request.job_id}"
            )
        from_node = tenant.node.name
        sites = self._placement_sites(request.app, target, grant)
        fw = self._framework(request.app, target)
        hysteresis = HysteresisFilter(self.confirm_windows)
        for _ in range(self.confirm_windows):
            hysteresis.update(sites)
        # The crashed node's MCDRAM died with it: every fast byte of
        # the new placement must be re-promoted from slow memory,
        # charged at migration bandwidth like any other promotion.
        moved = sum(fw.app.find_object(site).size for site in sorted(sites))
        tenant.node = target
        tenant.extent = extent
        tenant.grant = grant
        tenant.sites = sites
        tenant.hysteresis = hysteresis
        tenant.traffic = traffic_for_sites(
            fw.app, target.spec.machine, fw.profile(), sites
        )
        tenant.fom_isolated = max(tenant.fom_isolated, self._cost(tenant, 1).fom)
        if moved:
            self.migrated_bytes += moved
            tenant.stall_until = (
                max(tenant.stall_until, self.clock.now)
                + moved / self.migration_bandwidth
            )
        target.tenants[request.job_id] = tenant
        self.rescues.append(
            RescueRecord(
                job_id=request.job_id,
                app=request.app,
                from_node=from_node,
                to_node=target.name,
                time=self.clock.now,
                moved_bytes=moved,
            )
        )
        self._log(
            f"rescue job={request.job_id} from={from_node} "
            f"to={target.name} grant={grant} migrated={moved}"
        )
        return True

    def _on_node_crash(self, name: str) -> None:
        node = self._node(name)
        if node.status == NODE_DOWN:
            return
        victims = node.residents()
        node.status = NODE_DOWN
        node.tenants = {}
        # The extents died with the node: reset wholesale instead of
        # freeing one by one.
        node.allocator.reset()
        self._log(f"crash node={name} victims={len(victims)}")
        budgets: dict[str, int | None] = {
            n.name: self.rescue_budget for n in self._up_nodes()
        }
        touched: dict[str, NodeState] = {}
        for tenant in victims:
            tenant.sync(self.clock.now)
            if self._rescue(tenant, budgets):
                touched[tenant.node.name] = tenant.node
            else:
                self._casualty(tenant, name, "node-crash")
        for target in touched.values():
            self._retime_node(target)
        if (
            self.fault_plan is not None
            and self.fault_plan.node_recover_seconds > 0
        ):
            self.events.push(
                self.clock.now + self.fault_plan.node_recover_seconds,
                NODE_RECOVER,
                name,
            )

    def _on_node_drain(self, name: str) -> None:
        node = self._node(name)
        if node.status != NODE_UP:
            return
        node.status = NODE_DRAINING
        self._log(f"drain node={name} residents={node.n_tenants}")
        if (
            self.fault_plan is not None
            and self.fault_plan.node_recover_seconds > 0
        ):
            self.events.push(
                self.clock.now + self.fault_plan.node_recover_seconds,
                NODE_RECOVER,
                name,
            )

    def _on_node_recover(self, name: str) -> None:
        node = self._node(name)
        if node.status == NODE_UP:
            return
        node.status = NODE_UP
        self._log(f"recover node={name}")
        self._drain_queue()

    def _on_tenant_kill(self, job_id: int) -> None:
        node = next((n for n in self.nodes if job_id in n.tenants), None)
        if node is None:
            return  # completed, shed or already a casualty: stale kill
        tenant = node.tenants[job_id]
        tenant.sync(self.clock.now)
        del node.tenants[job_id]
        node.allocator.free(tenant.extent)
        self._casualty(tenant, node.name, "tenant-kill")
        self._drain_queue()
        if node.status == NODE_UP:
            self._readvise_survivors(node)
        self._retime_node(node)

    # -- checkpointing ----------------------------------------------------

    def _identity(self) -> dict:
        """Everything that shapes the event timeline (wall-clock-only
        knobs — checkpoint cadence, chaos pauses — excluded so a
        stretched chaos run resumes cleanly)."""
        bp = self.backpressure
        return {
            "nodes": [
                {
                    "name": n.spec.name,
                    "machine": n.spec.machine.name,
                    "hbw_budget": n.spec.hbw_budget,
                }
                for n in self.nodes
            ],
            "arrivals": {
                "seed": self.arrivals.seed,
                "n_arrivals": self.arrivals.n_arrivals,
                "rate": self.arrivals.rate,
                "mix": list(self.arrivals.mix),
                "demands": list(self.arrivals.demands),
                "burst_factor": self.arrivals.burst_factor,
                "burst_fraction": self.arrivals.burst_fraction,
            },
            "scheduler": self.scheduler_name,
            "strategy": self.strategy,
            "min_grant_fraction": self.min_grant_fraction,
            "confirm_windows": self.confirm_windows,
            "migration_bandwidth": self.migration_bandwidth,
            "fault_plan": (
                self.fault_plan.to_dict() if self.fault_plan else None
            ),
            "backpressure": {
                "max_queue_depth": bp.max_queue_depth,
                "max_queue_delay": bp.max_queue_delay,
                "down_grant_fraction": bp.down_grant_fraction,
            },
            "rescue_budget": self.rescue_budget,
        }

    @staticmethod
    def _fingerprint(trace: tuple[JobRequest, ...]) -> str:
        canonical = repr(
            [
                (r.job_id, r.app, r.arrival_time, r.hbw_demand)
                for r in trace
            ]
        )
        return hashlib.sha256(canonical.encode()).hexdigest()[:32]

    def _encode_event(self, event: Event) -> dict:
        if event.kind == ARRIVAL:
            payload = event.payload.job_id
        elif event.kind == COMPLETE:
            payload = list(event.payload)
        else:
            payload = event.payload
        return {
            "time": event.time,
            "seq": event.seq,
            "kind": event.kind,
            "payload": payload,
        }

    def _decode_event(
        self, data: dict, trace: tuple[JobRequest, ...]
    ) -> Event:
        kind = data["kind"]
        if kind == ARRIVAL:
            payload = trace[int(data["payload"])]
        elif kind == COMPLETE:
            payload = (int(data["payload"][0]), int(data["payload"][1]))
        elif kind in (NODE_CRASH, NODE_DRAIN, NODE_RECOVER):
            payload = str(data["payload"])
        elif kind == TENANT_KILL:
            payload = int(data["payload"])
        else:
            raise CheckpointError(
                f"checkpoint holds unknown event kind {kind!r}"
            )
        return Event(
            time=float(data["time"]),
            seq=int(data["seq"]),
            kind=kind,
            payload=payload,
        )

    def _checkpoint_payload(self) -> dict:
        return {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "session": self._session,
            "clock": self.clock.now,
            "events": [
                self._encode_event(e) for e in self.events.snapshot()
            ],
            "next_seq": self.events._seq,
            "events_processed": self._events_processed,
            "finalized": self._finalized,
            "nodes": [
                {
                    "name": node.name,
                    "status": node.status,
                    "holes": [list(h) for h in node.allocator.holes()],
                    "tenants": [
                        {
                            "job_id": t.job_id,
                            "grant": t.grant,
                            "extent": [t.extent.offset, t.extent.size],
                            "sites": sorted(t.sites),
                            "fom_isolated": t.fom_isolated,
                            "hysteresis": t.hysteresis.to_state(),
                            "admission_time": t.admission_time,
                            "progress": t.progress,
                            "rate": t.rate,
                            "last_update": t.last_update,
                            "stall_until": t.stall_until,
                            "generation": t.generation,
                        }
                        for t in node.residents()
                    ],
                }
                for node in self.nodes
            ],
            "queue": [r.job_id for r in self.queue],
            "journal": list(self.journal),
            "outcomes": [
                {
                    "job_id": t.job_id,
                    "app": t.app,
                    "node": t.node,
                    "hbw_demand": t.hbw_demand,
                    "hbw_granted": t.hbw_granted,
                    "arrival_time": t.arrival_time,
                    "admission_time": t.admission_time,
                    "completion_time": t.completion_time,
                    "fom_isolated": t.fom_isolated,
                    "fom_achieved": t.fom_achieved,
                }
                for t in self.outcomes
            ],
            "rejections": [
                {
                    "job_id": r.job_id,
                    "app": r.app,
                    "time": r.time,
                    "reason": r.reason,
                }
                for r in self.rejections
            ],
            "casualties": [
                {
                    "job_id": c.job_id,
                    "app": c.app,
                    "node": c.node,
                    "time": c.time,
                    "reason": c.reason,
                    "progress_fraction": c.progress_fraction,
                }
                for c in self.casualties
            ],
            "rescues": [
                {
                    "job_id": r.job_id,
                    "app": r.app,
                    "from_node": r.from_node,
                    "to_node": r.to_node,
                    "time": r.time,
                    "moved_bytes": r.moved_bytes,
                }
                for r in self.rescues
            ],
            "migrated_bytes": self.migrated_bytes,
            "evicted_bytes": self.evicted_bytes,
            "fragmentation": self.fragmentation.to_state(),
        }

    def _write_checkpoint(self) -> None:
        save_cluster_checkpoint(self.checkpoint_dir, self._checkpoint_payload())

    def _restore(self, payload: dict, trace: tuple[JobRequest, ...]) -> None:
        if payload.get("session") != self._session:
            raise CheckpointError(
                "checkpoint belongs to a different cluster session "
                f"({payload.get('session')!r} != {self._session!r}); "
                "refusing to mix state"
            )
        try:
            self.clock = SimClock(start=float(payload["clock"]))
            self.events = EventQueue.restore(
                [self._decode_event(e, trace) for e in payload["events"]],
                int(payload["next_seq"]),
            )
            self._events_processed = int(payload["events_processed"])
            self._finalized = bool(payload.get("finalized", False))
            by_name = {n.name: n for n in self.nodes}
            if set(by_name) != {n["name"] for n in payload["nodes"]}:
                raise CheckpointError(
                    "checkpointed fleet does not match the configured nodes"
                )
            for node_state in payload["nodes"]:
                node = by_name[node_state["name"]]
                node.status = str(node_state["status"])
                node.allocator = ExtentAllocator.restore(
                    node.spec.hbw_budget, node_state["holes"]
                )
                node.tenants = {}
                for ts in node_state["tenants"]:
                    request = trace[int(ts["job_id"])]
                    sites = frozenset(str(s) for s in ts["sites"])
                    fw = self._framework(request.app, node)
                    tenant = Tenant(
                        request=request,
                        node=node,
                        extent=Extent(
                            offset=int(ts["extent"][0]),
                            size=int(ts["extent"][1]),
                        ),
                        grant=int(ts["grant"]),
                        sites=sites,
                        traffic=traffic_for_sites(
                            fw.app, node.spec.machine, fw.profile(), sites
                        ),
                        fom_isolated=float(ts["fom_isolated"]),
                        hysteresis=HysteresisFilter.from_state(
                            ts["hysteresis"]
                        ),
                        admission_time=float(ts["admission_time"]),
                        progress=float(ts["progress"]),
                        rate=float(ts["rate"]),
                        last_update=float(ts["last_update"]),
                        stall_until=float(ts["stall_until"]),
                        generation=int(ts["generation"]),
                    )
                    node.tenants[tenant.job_id] = tenant
            self.queue = [trace[int(j)] for j in payload["queue"]]
            self.journal = [str(line) for line in payload["journal"]]
            self.outcomes = [
                TenantOutcome(**o) for o in payload["outcomes"]
            ]
            self.rejections = [
                Rejection(**r) for r in payload["rejections"]
            ]
            self.casualties = [
                TenantCasualty(**c) for c in payload["casualties"]
            ]
            self.rescues = [RescueRecord(**r) for r in payload["rescues"]]
            self.migrated_bytes = int(payload["migrated_bytes"])
            self.evicted_bytes = int(payload["evicted_bytes"])
            self.fragmentation = FragmentationTracker.from_state(
                payload["fragmentation"]
            )
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed cluster checkpoint: {exc}"
            ) from exc

    # -- run -------------------------------------------------------------

    def _schedule_faults(self, trace: tuple[JobRequest, ...]) -> None:
        """Push the seeded node-fault schedule (after the arrivals, so
        same-instant collisions resolve arrival-first, fault-second —
        deterministically)."""
        if self.injector is None or not (
            self.fault_plan.node_crash_rate > 0
            or self.fault_plan.node_drain_rate > 0
        ):
            return
        horizon = trace[-1].arrival_time
        names = [n.name for n in self.nodes]
        for at, kind, name in self.injector.node_fault_schedule(
            names, horizon
        ):
            self.events.push(at, kind, name)
            self._log_at(at, f"schedule-fault kind={kind} node={name}")

    def _log_at(self, at: float, line: str) -> None:
        """Journal a future-dated scheduling decision (made now, at
        clock time zero during setup)."""
        self.journal.append(f"t={self.clock.now:.6f} {line} at={at:.6f}")

    def _dispatch(self, event: Event) -> None:
        if event.kind == ARRIVAL:
            self._on_arrival(event.payload)
        elif event.kind == COMPLETE:
            self._on_complete(*event.payload)
        elif event.kind == NODE_CRASH:
            self._on_node_crash(event.payload)
        elif event.kind == NODE_DRAIN:
            self._on_node_drain(event.payload)
        elif event.kind == NODE_RECOVER:
            self._on_node_recover(event.payload)
        elif event.kind == TENANT_KILL:
            self._on_tenant_kill(event.payload)
        else:  # pragma: no cover
            raise ConfigError(f"unknown event kind {event.kind!r}")

    def run(self) -> ClusterReport:
        """Process the whole trace; returns the populated report."""
        trace = self.arrivals.generate()
        self._session = cluster_session_key(
            {**self._identity(), "trace": self._fingerprint(trace)}
        )
        restored = False
        if self.resume:
            payload = load_cluster_checkpoint(self.checkpoint_dir)
            if payload is None:
                raise CheckpointError(
                    f"{self.checkpoint_dir}: no cluster checkpoint to "
                    "resume from"
                )
            self._restore(payload, trace)
            restored = True
        if not restored:
            self.journal.append(
                f"# repro-cluster nodes={len(self.nodes)} "
                f"arrivals={len(trace)} seed={self.arrivals.seed} "
                f"scheduler={self.scheduler_name} "
                f"strategy={self.strategy} "
                f"rate={self.arrivals.rate:.6f}"
            )
            if self.arrivals.bursty:
                self.journal.append(
                    f"# burst factor={self.arrivals.burst_factor:.6f} "
                    f"fraction={self.arrivals.burst_fraction:.6f}"
                )
            for request in trace:
                self.events.push(request.arrival_time, ARRIVAL, request)
            self._schedule_faults(trace)
        while self.events:
            event = self.events.pop()
            self.clock.advance(event.time)
            self._shed_overdue()
            self._dispatch(event)
            self._observe_fragmentation()
            self._events_processed += 1
            if (
                self.checkpoint_dir is not None
                and self._events_processed % self.checkpoint_every == 0
            ):
                self._write_checkpoint()
            if self.event_pause_seconds > 0:
                time.sleep(self.event_pause_seconds)
        # Anything still queued never found a home: classified
        # rejections, so the accounting reconciles.
        if not self._finalized:
            for request in self.queue:
                self._reject(request, REASON_SHED_STRANDED)
            self.queue = []
        report = ClusterReport(
            n_nodes=len(self.nodes),
            n_arrivals=len(trace),
            scheduler=self.scheduler_name,
            strategy=self.strategy,
            seed=self.arrivals.seed,
            tenants=tuple(
                sorted(self.outcomes, key=lambda t: t.job_id)
            ),
            rejections=tuple(self.rejections),
            casualties=tuple(
                sorted(self.casualties, key=lambda c: (c.time, c.job_id))
            ),
            rescues=tuple(
                sorted(self.rescues, key=lambda r: (r.time, r.job_id))
            ),
            mean_fragmentation=self.fragmentation.mean,
            final_fragmentation=self.fragmentation.last,
            migrated_bytes=self.migrated_bytes,
            evicted_bytes=self.evicted_bytes,
            makespan=self.clock.now,
        )
        if not self._finalized:
            self.journal.append(
                f"fragmentation mean={report.mean_fragmentation:.6f} "
                f"final={report.final_fragmentation:.6f}"
            )
            self.journal.append(
                f"fairness={report.fairness:.6f} "
                f"aggregate_fom={report.aggregate_fom:.6f} "
                f"isolated={report.aggregate_fom_isolated:.6f} "
                f"rejected={report.n_rejected} "
                f"migrated_bytes={report.migrated_bytes} "
                f"evicted_bytes={report.evicted_bytes}"
            )
            self.journal.append(
                f"accounting arrivals={report.n_arrivals} "
                f"completed={len(report.tenants)} "
                f"rejected={report.n_rejected} "
                f"never_fits={report.n_never_fits} shed={report.n_shed} "
                f"casualties={report.n_casualties} "
                f"rescued={report.n_rescued} "
                f"reconciled={str(report.accounted).lower()}"
            )
            self._finalized = True
            if self.checkpoint_dir is not None:
                self._write_checkpoint()
        return report

    def journal_text(self) -> str:
        """The full decision journal (what CI byte-compares)."""
        return "\n".join(self.journal) + "\n"


def run_cluster(
    nodes: tuple[NodeSpec, ...],
    arrivals: ArrivalStream,
    scheduler: str = "first-fit",
    strategy: str = "misses-0%",
    **kwargs,
) -> tuple[ClusterReport, str]:
    """One-call convenience: (report, journal text)."""
    sim = ClusterSim(
        nodes, arrivals, scheduler=scheduler, strategy=strategy, **kwargs
    )
    report = sim.run()
    return report, sim.journal_text()
