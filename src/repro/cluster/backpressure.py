"""Overload admission control: shed or down-grant before collapsing.

Under an overload burst the FIFO admission queue grows without bound —
every queued tenant eventually gets in, but mean queueing delay (and
the report's fairness over it) is ruined for everyone. A production
placement service applies *backpressure* instead: beyond a queue-depth
or queue-delay threshold it sheds requests outright (a classified
rejection, not a silent loss), and when a request almost fits it may
*down-grant* — retry admission at a reduced demand — rather than hold
a big hole hostage.

The policy here is deliberately declarative: three thresholds, no
internal state, every verdict a pure function of (policy, queue
observation). That keeps the shed/down-grant decisions on the same
deterministic footing as the rest of the simulation — a checkpointed
run resumes to identical verdicts because the verdicts never depended
on anything outside the event timeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Rejection classifications the report distinguishes.
REASON_NEVER_FITS = "never-fits"
REASON_SHED_DEPTH = "shed-queue-depth"
REASON_SHED_DELAY = "shed-queue-delay"
REASON_SHED_STRANDED = "shed-stranded"
REJECTION_REASONS: tuple[str, ...] = (
    REASON_NEVER_FITS,
    REASON_SHED_DEPTH,
    REASON_SHED_DELAY,
    REASON_SHED_STRANDED,
)


@dataclass(frozen=True, slots=True)
class BackpressurePolicy:
    """Thresholds for shedding and down-granting queued admissions.

    ``None`` disables a dial; the default-constructed policy is a
    no-op (every request queues forever, exactly the pre-backpressure
    behaviour).
    """

    #: Shed an arriving request when the queue already holds this many.
    max_queue_depth: int | None = None
    #: Shed a queued request once it has waited this many simulated
    #: seconds without being admitted.
    max_queue_delay: float | None = None
    #: When a request cannot be admitted at its minimum grant, retry
    #: at ``down_grant_fraction * demand`` before giving up on this
    #: drain pass. ``None`` disables down-granting.
    down_grant_fraction: float | None = None

    def __post_init__(self) -> None:
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ConfigError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.max_queue_delay is not None and self.max_queue_delay <= 0:
            raise ConfigError(
                f"max_queue_delay must be positive, got {self.max_queue_delay}"
            )
        if self.down_grant_fraction is not None and not (
            0.0 < self.down_grant_fraction <= 1.0
        ):
            raise ConfigError(
                "down_grant_fraction must be in (0, 1], got "
                f"{self.down_grant_fraction}"
            )

    @property
    def active(self) -> bool:
        return (
            self.max_queue_depth is not None
            or self.max_queue_delay is not None
            or self.down_grant_fraction is not None
        )

    def sheds_at_depth(self, queue_depth: int) -> bool:
        """Should a new arrival be shed given the current queue depth
        (not counting the arrival itself)?"""
        return (
            self.max_queue_depth is not None
            and queue_depth >= self.max_queue_depth
        )

    def overdue(self, arrival_time: float, now: float) -> bool:
        """Has a queued request outlived the delay threshold?"""
        return (
            self.max_queue_delay is not None
            and now - arrival_time > self.max_queue_delay
        )

    def down_grant(self, demand: int) -> int | None:
        """The reduced demand to retry at, or ``None`` if disabled."""
        if self.down_grant_fraction is None:
            return None
        return max(1, int(demand * self.down_grant_fraction))
