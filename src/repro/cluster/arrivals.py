"""Trace-driven arrival stream: the cluster's load generator.

The "millions of users" scenario (ROADMAP item 2) needs app instances
arriving over time, each asking for a slice of some node's MCDRAM.
:class:`ArrivalStream` synthesises that trace deterministically from a
seed: exponential inter-arrival times (a Poisson process, the standard
open-loop cluster load model), an app mix drawn over the registered
workloads (the paper's Table I apps plus the synthetic ``phaseshift``
churner), and an HBW demand drawn from the paper's budget ladder
(Section IV's 32-256 MB per rank). The stream is a plain tuple of
:class:`JobRequest` records, so a recorded production trace can be
replayed through the same scheduler by constructing the requests
directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.registry import APP_NAMES
from repro.errors import ConfigError
from repro.units import MIB

#: Default workload mix: every Table I app plus the phase-shifting
#: synthetic (its placement churns, which is what stresses survivor
#: re-advising).
DEFAULT_MIX: tuple[str, ...] = APP_NAMES + ("phaseshift",)

#: The paper's per-rank budget ladder (Section IV-C).
DEMAND_LADDER: tuple[int, ...] = (
    32 * MIB,
    64 * MIB,
    128 * MIB,
    256 * MIB,
)


@dataclass(frozen=True, slots=True)
class JobRequest:
    """One tenant asking the cluster for a home."""

    job_id: int
    app: str
    #: Simulated seconds since the run started.
    arrival_time: float
    #: Real bytes of fast memory the tenant asks for.
    hbw_demand: int

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise ConfigError(f"negative job id {self.job_id}")
        if not self.app:
            raise ConfigError("job needs an application name")
        if self.arrival_time < 0:
            raise ConfigError(f"negative arrival time {self.arrival_time}")
        if self.hbw_demand <= 0:
            raise ConfigError(
                f"job {self.job_id}: demand must be positive"
            )


@dataclass(frozen=True, slots=True)
class ArrivalStream:
    """Seeded synthetic arrival trace.

    ``rate`` is the mean arrivals per simulated second; one draw of
    :meth:`generate` is fully determined by ``(seed, n_arrivals,
    rate, mix, demands)`` — the cluster determinism guarantee starts
    here.
    """

    seed: int = 0
    n_arrivals: int = 32
    rate: float = 0.1
    mix: tuple[str, ...] = DEFAULT_MIX
    demands: tuple[int, ...] = DEMAND_LADDER
    #: Overload burst: the central ``burst_fraction`` of the trace
    #: arrives ``burst_factor`` times faster (a flash crowd in the
    #: middle of the run). ``burst_factor == 1`` or
    #: ``burst_fraction == 0`` leaves the stream bit-identical to the
    #: burst-free draw — the same RNG consumption, untouched gaps.
    burst_factor: float = 1.0
    burst_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.n_arrivals < 1:
            raise ConfigError(
                f"need at least one arrival, got {self.n_arrivals}"
            )
        if self.rate <= 0:
            raise ConfigError(f"arrival rate must be positive: {self.rate}")
        if not self.mix:
            raise ConfigError("arrival mix needs at least one application")
        if not self.demands or any(d <= 0 for d in self.demands):
            raise ConfigError("demand ladder must be positive byte counts")
        if self.burst_factor < 1.0:
            raise ConfigError(
                f"burst factor must be >= 1, got {self.burst_factor}"
            )
        if not 0.0 <= self.burst_fraction <= 1.0:
            raise ConfigError(
                f"burst fraction must be in [0, 1], got {self.burst_fraction}"
            )

    @property
    def bursty(self) -> bool:
        return self.burst_factor > 1.0 and self.burst_fraction > 0.0

    def generate(self) -> tuple[JobRequest, ...]:
        """The arrival trace (sorted by time, ids in arrival order)."""
        rng = np.random.default_rng(self.seed)
        gaps = rng.exponential(scale=1.0 / self.rate, size=self.n_arrivals)
        if self.bursty:
            # Compress the central slice's inter-arrival gaps: an
            # exponential divided by k is exponential at k times the
            # rate, so the burst is a genuine Poisson surge while the
            # RNG consumption (and hence every non-burst draw) stays
            # identical to the burst-free stream.
            k = int(round(self.n_arrivals * self.burst_fraction))
            if k > 0:
                start = (self.n_arrivals - k) // 2
                gaps[start:start + k] /= self.burst_factor
        times = np.cumsum(gaps)
        apps = rng.choice(len(self.mix), size=self.n_arrivals)
        demands = rng.choice(len(self.demands), size=self.n_arrivals)
        return tuple(
            JobRequest(
                job_id=i,
                app=self.mix[int(apps[i])],
                arrival_time=float(times[i]),
                hbw_demand=int(self.demands[int(demands[i])]),
            )
            for i in range(self.n_arrivals)
        )
