"""HPCG 3.0mod model (Table I, Figures 4a-4c).

High Performance Conjugate Gradient: additive-Schwarz, symmetric
Gauss-Seidel preconditioned CG. Table I: 5,718 LoC C++, MPI+OpenMP,
64 ranks x 4 threads, 104^3 for 400 s, FOM in GFLOPS, 33 ``new`` /
17 ``delete`` statements, 928 MB/process HWM (59.4 GB total), 13,629
samples/process at 30.46 samples/s, 0.42 % monitoring overhead.

Paper results to reproduce (Section IV-C): the framework is the
*best* placement — +78.88 % over DDR and +24.82 % over the second
best (cache mode) — with the sweet spot at 256 MB/rank; 2 data
objects suffice for most of the gain.

Inventory rationale: the CG working set is dominated by the sparse
matrix (values + column indices) which is *streamed* once per SPMV
and has poor reuse, while the MG preconditioner levels, halo exchange
buffers, x-vector (gathered indirectly) and residual vectors carry
most of the LLC misses in a fraction of the footprint. numactl fares
poorly because the matrix is allocated *first* and fills the MCDRAM
share with low-value pages; cache mode suffers conflict/capacity
misses from the matrix sweep evicting the hot vectors.
"""

from __future__ import annotations

from repro.apps.base import (
    AccessPattern,
    AppCalibration,
    AppGeometry,
    ObjectSpec,
    PhaseSpec,
    SimApplication,
)
from repro.units import MIB

#: Streamed once per iteration, no fine-grained reuse.
_STREAMED = AccessPattern("sequential", 1.0, reref_per_iteration=1.0)


class HPCG(SimApplication):
    name = "hpcg"
    title = "HPCG 3.0mod"
    language = "C++"
    parallelism = "MPI+OpenMP"
    problem_size = "104^3, 400s"
    lines_of_code = 5718
    allocation_statements = "0/0/0/33/17/0/0"
    allocs_per_second_declared = 3263.0
    geometry = AppGeometry(ranks=64, threads_per_rank=4)
    calibration = AppCalibration(
        fom_ddr=10.5,
        ddr_time=447.0,
        memory_bound_fraction=0.60,
        fom_name="GFLOPS",
        fom_units="GFLOPS",
    )
    n_iterations = 15
    stream_misses = 120_000
    sampling_period = 9  # 120000/9 ~ 13.3k samples (Table I: 13,629)
    stack_miss_fraction = 0.01

    phases = (
        PhaseSpec("ComputeSPMV", 0.45, instruction_weight=1.2),
        PhaseSpec("ComputeMG", 0.35, instruction_weight=1.0),
        PhaseSpec("ComputeDotProduct", 0.20, instruction_weight=0.8),
    )

    objects = (
        # Allocated first: the sparse matrix. Huge, streamed, low
        # per-byte value — the object numactl's FCFS wastes MCDRAM on.
        ObjectSpec(
            name="matrix_values",
            callstack=(("GenerateProblem", 12), ("AllocateMatrix", 5)),
            size=490 * MIB,
            miss_weight=0.04,
            pattern=_STREAMED,
            phases=("ComputeSPMV",),
        ),
        ObjectSpec(
            name="matrix_indices",
            callstack=(("GenerateProblem", 12), ("AllocateMatrix", 9)),
            size=150 * MIB,
            miss_weight=0.015,
            pattern=_STREAMED,
            phases=("ComputeSPMV",),
        ),
        # The two critical objects of the paper's productivity remark:
        # the CG residual/temporary vectors and the MG preconditioner
        # working set. Together they only fit at the 256 MB budget,
        # which is exactly why HPCG's dFOM/MByte sweet spot sits there.
        ObjectSpec(
            name="residual_vectors",
            callstack=(("InitializeVectors", 15),),
            size=150 * MIB,
            miss_weight=0.62,
            pattern=AccessPattern("random", 1.0, reref_per_iteration=14.0),
            phases=("ComputeMG", "ComputeDotProduct"),
        ),
        ObjectSpec(
            name="mg_levels",
            callstack=(("GenerateCoarseProblem", 21), ("AllocateMatrix", 5)),
            size=60 * MIB,
            miss_weight=0.28,
            pattern=AccessPattern("random", 0.9, reref_per_iteration=8.0),
            phases=("ComputeMG",),
        ),
        # Minor players.
        ObjectSpec(
            name="halo_buffers",
            callstack=(("SetupHalo", 33),),
            size=30 * MIB,
            miss_weight=0.02,
            pattern=AccessPattern("sequential", 1.0, reref_per_iteration=6.0),
            phases=("ComputeSPMV",),
        ),
        ObjectSpec(
            name="vector_x",
            callstack=(("InitializeVectors", 7),),
            size=20 * MIB,
            miss_weight=0.015,
            pattern=AccessPattern("random", 1.0, reref_per_iteration=6.0),
        ),
    )
