"""SNAP 1.0.7 model (Table I, Figures 4p-4r, Figure 5).

Discrete-ordinates neutral-particle transport proxy (LANL). Table I:
8,583 LoC Fortran, MPI+OpenMP, 64 ranks x 4 threads, 32x64x64 for 20
iterations, FOM in iterations/s, 5 allocate / 1 deallocate
statements, 1,006.55 allocations/process/s, 1,022 MB/process HWM
(65.4 GB total), 3,194 samples/process, 0.15 % monitoring overhead.

Paper results to reproduce:

* ``numactl -p 1`` wins marginally: the ``outer_src_calc`` routine
  spills registers to the *stack* under pressure, and only numactl
  places the stack on MCDRAM — the framework cannot promote automatic
  variables (Figure 5 shows the MIPS dip during ``outer_src_calc``
  under the framework, absent under numactl);
* the density strategy allocates far *less* memory (~64 MB) in the
  128/256 MB cases: SNAP has "few small chunks of memory and one
  large (256 Mbytes) buffer, and the selection mechanism favors the
  placement of the small chunks in MCDRAM but then the large buffer
  does not fit" (Section IV-C).
"""

from __future__ import annotations

from repro.apps.base import (
    AccessPattern,
    AppCalibration,
    AppGeometry,
    ObjectSpec,
    PhaseSpec,
    SimApplication,
)
from repro.units import MIB


class SNAP(SimApplication):
    name = "snap"
    title = "SNAP 1.0.7"
    language = "Fortran"
    parallelism = "MPI+OpenMP"
    problem_size = "32x64x64, 20 its"
    lines_of_code = 8583
    allocation_statements = "0/0/0/5/1/0/0"
    allocs_per_second_declared = 1006.55
    geometry = AppGeometry(ranks=64, threads_per_rank=4)
    calibration = AppCalibration(
        fom_ddr=0.066,
        ddr_time=261.0,
        memory_bound_fraction=0.26,
        fom_name="FOM",
        fom_units="Iterations/s",
    )
    n_iterations = 12
    stream_misses = 48_000
    sampling_period = 15  # 48000/15 = 3.2k samples (Table I: 3,194)
    #: The register-spill traffic of ``outer_src_calc``: a sizeable
    #: share of misses lands on the stack, where only numactl (and
    #: cache mode) can help. The spills happen in that one routine
    #: (Figure 5's MIPS dip).
    stack_miss_fraction = 0.20
    stack_phases = ("outer_src_calc",)

    # outer_src_calc is short but memory-hungry (the spills), which is
    # exactly what produces Figure 5's MIPS dip under the framework.
    phases = (
        PhaseSpec("outer_src_calc", 0.12, instruction_weight=1.3),
        PhaseSpec("octsweep", 0.88, instruction_weight=1.0),
    )

    objects = (
        # The one large angular-flux buffer (~256 MB/rank).
        ObjectSpec(
            name="angular_flux",
            callstack=(("allocate_flux", 6),),
            size=248 * MIB,
            miss_weight=0.42,
            pattern=AccessPattern("sequential", 0.55, reref_per_iteration=1.0),
            phases=("octsweep",),
        ),
        # The small hot chunks the density strategy favours.
        ObjectSpec(
            name="scalar_flux_moments",
            callstack=(("allocate_flux", 12),),
            size=22 * MIB,
            miss_weight=0.13,
            pattern=AccessPattern("random", 1.0, reref_per_iteration=10.0),
        ),
        ObjectSpec(
            name="cross_sections",
            callstack=(("allocate_xs", 8),),
            size=18 * MIB,
            miss_weight=0.07,
            pattern=AccessPattern("random", 1.0, reref_per_iteration=10.0),
            phases=("outer_src_calc",),
        ),
        ObjectSpec(
            name="source_moments",
            callstack=(("allocate_src", 9),),
            size=16 * MIB,
            miss_weight=0.07,
            pattern=AccessPattern("sequential", 1.0, reref_per_iteration=6.0),
            phases=("outer_src_calc",),
        ),
        ObjectSpec(
            name="sweep_workspace",
            callstack=(("allocate_sweep", 7),),
            size=10 * MIB,
            miss_weight=0.09,
            pattern=AccessPattern("sequential", 1.0, reref_per_iteration=6.0),
            phases=("octsweep",),
        ),
        # Cold geometry/bookkeeping filling out the 1 GB footprint.
        ObjectSpec(
            name="geometry_tables",
            callstack=(("allocate_geom", 5),),
            size=700 * MIB,
            miss_weight=0.10,
            pattern=AccessPattern("sequential", 0.25, reref_per_iteration=1.0),
            phases=("octsweep",),
        ),
    )
