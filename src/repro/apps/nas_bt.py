"""NAS BT 3.3.1 model (Table I, Figures 4g-4i).

Block-Tridiagonal benchmark from the NAS Parallel Benchmarks, class D
(408^3, 250 its), OpenMP-only with 272 threads, FOM in Mop/s. Table
I: 6,415 LoC Fortran, 15 allocate / 15 deallocate statements (the
paper *modified* BT so the key static arrays are dynamically
allocated — the interposition library cannot promote statics), 0.49
allocations/process/s, 11,136 MB HWM in a single process, 38,215
samples, 0.32 % monitoring overhead.

Paper results to reproduce: a single process whose 10.9 GB working
set *fits* in the 16 GB MCDRAM — so ``numactl -p 1`` (which also
captures the remaining statics and the stack) is marginally the best;
the framework converges to nearly the same performance once the
budget reaches the working set, and the budget sweep runs 32 MB ..
16 GB (Section IV-B). Cache mode is close but pays the direct-mapped
organisation.
"""

from __future__ import annotations

from repro.apps.base import (
    AccessPattern,
    AppCalibration,
    AppGeometry,
    ObjectSpec,
    PhaseSpec,
    SimApplication,
)
from repro.units import MIB

_SOLVE = AccessPattern("sequential", 0.6, reref_per_iteration=8.0)


class NasBT(SimApplication):
    name = "nas-bt"
    title = "NAS BT 3.3.1"
    language = "Fortran"
    parallelism = "OpenMP"
    problem_size = "D 408^3, 250 its"
    lines_of_code = 6415
    allocation_statements = "0/0/0/0/0/15/15"
    allocs_per_second_declared = 0.49
    geometry = AppGeometry(ranks=1, threads_per_rank=272)
    calibration = AppCalibration(
        fom_ddr=17000.0,
        ddr_time=3035.0,
        memory_bound_fraction=0.66,
        fom_name="FOM",
        fom_units="Mop/s",
    )
    n_iterations = 12
    stream_misses = 150_000
    sampling_period = 4  # 150000/4 = 37.5k samples (Table I: 38,215)
    stack_miss_fraction = 0.03
    # A single process sees the whole MCDRAM; footprints are scaled
    # more aggressively so the 11 GB arrays stay laptop-sized.
    scale = 1.0 / 1024.0

    phases = (
        PhaseSpec("x_solve", 0.30, instruction_weight=1.0),
        PhaseSpec("y_solve", 0.30, instruction_weight=1.0),
        PhaseSpec("z_solve", 0.30, instruction_weight=1.0),
        PhaseSpec("add", 0.10, instruction_weight=0.6),
    )

    objects = (
        # The five main solution/RHS arrays (converted from static to
        # dynamic by the paper's modification).
        ObjectSpec(
            name="u_solution",
            callstack=(("allocate_arrays", 5),),
            size=3400 * MIB,
            miss_weight=0.30,
            pattern=AccessPattern("sequential", 0.55, reref_per_iteration=8.0),
        ),
        ObjectSpec(
            name="rhs_array",
            callstack=(("allocate_arrays", 9),),
            size=3400 * MIB,
            miss_weight=0.28,
            pattern=AccessPattern("sequential", 0.55, reref_per_iteration=8.0),
        ),
        ObjectSpec(
            name="forcing_array",
            callstack=(("allocate_arrays", 13),),
            size=2600 * MIB,
            miss_weight=0.14,
            pattern=AccessPattern("sequential", 0.50, reref_per_iteration=8.0),
            phases=("add",),
        ),
        ObjectSpec(
            name="lhs_workspace",
            callstack=(("allocate_arrays", 17),),
            size=1200 * MIB,
            miss_weight=0.20,
            pattern=_SOLVE,
            phases=("x_solve", "y_solve", "z_solve"),
        ),
        ObjectSpec(
            name="aux_workspace",
            callstack=(("allocate_arrays", 21),),
            size=320 * MIB,
            miss_weight=0.06,
            pattern=AccessPattern("sequential", 0.8, reref_per_iteration=10.0),
            phases=("x_solve", "y_solve", "z_solve"),
        ),
        # Residual statics the modification did not convert; numactl
        # still captures them.
        ObjectSpec(
            name="bt_constants",
            callstack=(),
            size=96 * MIB,
            static=True,
            miss_weight=0.02,
            pattern=AccessPattern("random", 1.0, reref_per_iteration=10.0),
        ),
    )
