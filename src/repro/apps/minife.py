"""miniFE 2.0rc3 model (Table I, Figures 4j-4l).

Mantevo/CORAL unstructured implicit finite-element proxy. Table I:
4,609 LoC C++, MPI+OpenMP, 64 ranks x 4 threads, 520x512x512 for 200
iterations, FOM in MFLOPS, 5 new / 1 delete statements, 1,006.55
allocations/process/s, 1,022 MB/process HWM (65.4 GB total), 3,194
samples/process, 4.10 % monitoring overhead (the highest of the
suite — frequent small allocations).

Paper results to reproduce: the framework wins; the sweet spot sits
at 128 MB/rank (Figure 4l), and miniFE uses only ~80 MB/rank even
when allowed 256 (Figure 4k) — the critical set is small: "the
fastest cases of ... miniFE reach their maximum performance by
placing ... 3 data objects into fast memory". numactl is poor
because the big, cold FE matrix is assembled first.
"""

from __future__ import annotations

from repro.apps.base import (
    AccessPattern,
    AppCalibration,
    AppGeometry,
    ObjectSpec,
    PhaseSpec,
    SimApplication,
)
from repro.units import MIB


class MiniFE(SimApplication):
    name = "minife"
    title = "miniFE 2.0rc3"
    language = "C++"
    parallelism = "MPI+OpenMP"
    problem_size = "520x512x512, 200 its"
    lines_of_code = 4609
    allocation_statements = "0/0/0/5/1/0"
    allocs_per_second_declared = 1006.55
    geometry = AppGeometry(ranks=64, threads_per_rank=4)
    calibration = AppCalibration(
        fom_ddr=9500.0,
        ddr_time=261.0,
        memory_bound_fraction=0.34,
        fom_name="FOM",
        fom_units="MFLOPS",
    )
    n_iterations = 16
    stream_misses = 64_000
    sampling_period = 20  # 64000/20 = 3.2k samples (Table I: 3,194)
    stack_miss_fraction = 0.015

    phases = (
        PhaseSpec("matvec", 0.55, instruction_weight=1.1),
        PhaseSpec("dot_axpy", 0.30, instruction_weight=0.9),
        PhaseSpec("exchange", 0.15, instruction_weight=0.5),
    )

    objects = (
        # Allocated first: the mesh/graph construction buffers — big
        # enough (180 MB) to *fit* the MCDRAM share, so size-threshold
        # FCFS policies (autohbw, numactl) spend fast memory on them.
        ObjectSpec(
            name="fe_graph_buffers",
            callstack=(("generate_matrix_structure", 9),),
            size=180 * MIB,
            miss_weight=0.04,
            pattern=AccessPattern("sequential", 1.0, reref_per_iteration=2.0),
            phases=("exchange",),
        ),
        # The FE stiffness matrix — streamed once per matvec.
        ObjectSpec(
            name="fe_matrix_values",
            callstack=(("assemble_FE_matrix", 18), ("allocate_matrix", 6)),
            size=460 * MIB,
            miss_weight=0.22,
            pattern=AccessPattern("sequential", 1.0, reref_per_iteration=1.0),
            phases=("matvec",),
        ),
        ObjectSpec(
            name="fe_matrix_indices",
            callstack=(("assemble_FE_matrix", 18), ("allocate_matrix", 11)),
            size=290 * MIB,
            miss_weight=0.08,
            pattern=AccessPattern("sequential", 1.0, reref_per_iteration=1.0),
            phases=("matvec",),
        ),
        # The 3 critical objects of the paper's productivity remark.
        ObjectSpec(
            name="cg_vectors",
            callstack=(("cg_solve", 9),),
            size=38 * MIB,
            miss_weight=0.34,
            pattern=AccessPattern("random", 1.0, reref_per_iteration=40.0),
        ),
        ObjectSpec(
            name="halo_exchange_buffers",
            callstack=(("exchange_externals", 14),),
            size=22 * MIB,
            miss_weight=0.18,
            pattern=AccessPattern("sequential", 1.0, reref_per_iteration=16.0),
            phases=("exchange", "matvec"),
        ),
        ObjectSpec(
            name="mesh_coordinates",
            callstack=(("generate_mesh", 7),),
            size=20 * MIB,
            miss_weight=0.15,
            pattern=AccessPattern("random", 0.9, reref_per_iteration=20.0),
            phases=("dot_axpy", "matvec"),
        ),
        ObjectSpec(
            name="assembly_scratch",
            callstack=(("assemble_FE_matrix", 27),),
            size=12 * MIB,
            miss_weight=0.03,
            pattern=AccessPattern("sequential", 1.0, reref_per_iteration=4.0),
            phases=("exchange",),
        ),
    )
