"""Synthetic phase-shifting workload for the online re-adviser.

The paper's applications keep one hot set for the whole run, so a
single profile→advise pass is near-optimal. Real multi-physics and
AMR codes do not: the dominant data structure changes mid-run (Olson
et al. and Marques et al., PAPERS.md, both motivate online guidance
with exactly this). ``PhaseShift`` models the simplest such shape —
two equally hot arrays, each dominant in one *half* of the timed
span, sized so the experiment's MCDRAM budget fits one but not both:

* regime A (first half of the iterations): ``hot_red`` takes nearly
  all heap misses, ``hot_black`` is idle;
* regime B (second half): the roles swap;
* a large streaming ``backdrop`` and a static table are touched
  throughout, as low-priority filler.

A one-shot advisor sees both hot arrays with ~equal cumulative miss
counts and can promote only one of them — serving at most half the
hot traffic from MCDRAM. An online re-adviser that re-solves per
window promotes whichever array is hot *now* and pays one migration
at the shift, which is the scenario the ISSUE's acceptance criterion
measures.

The regime switch is implemented by dropping the inactive hot array
from the ``live`` map a window generates misses from — the object
stays allocated (both are init-time persistent allocations), it is
simply untouched, exactly like a solver array between solver stages.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import (
    AccessPattern,
    AppCalibration,
    AppGeometry,
    ObjectSpec,
    PhaseSpec,
    SimApplication,
)
from repro.units import MIB


class PhaseShift(SimApplication):
    name = "phaseshift"
    title = "PhaseShift (synthetic)"
    language = "C"
    parallelism = "MPI"
    problem_size = "2 regimes x 8 iterations"
    lines_of_code = 0
    allocation_statements = "3/0/0/0/0/0/0"
    geometry = AppGeometry(ranks=64, threads_per_rank=1)
    calibration = AppCalibration(
        fom_ddr=50.0,
        ddr_time=120.0,
        memory_bound_fraction=0.6,
        fom_name="FOM",
        fom_units="Sweeps/s",
    )
    n_iterations = 16
    stream_misses = 64_000
    sampling_period = 7
    stack_miss_fraction = 0.01

    phases = (PhaseSpec("sweep", 1.0, instruction_weight=1.0),)

    objects = (
        ObjectSpec(
            name="hot_red",
            callstack=(("setup_fields", 11),),
            size=24 * MIB,
            miss_weight=0.46,
            pattern=AccessPattern("random", 1.0, reref_per_iteration=24.0),
        ),
        ObjectSpec(
            name="hot_black",
            callstack=(("setup_fields", 17),),
            size=24 * MIB,
            miss_weight=0.46,
            pattern=AccessPattern("random", 1.0, reref_per_iteration=24.0),
        ),
        ObjectSpec(
            name="backdrop",
            callstack=(("load_mesh", 5),),
            size=96 * MIB,
            miss_weight=0.06,
            pattern=AccessPattern("sequential", 0.5, reref_per_iteration=4.0),
        ),
        ObjectSpec(
            name="coeff_table",
            callstack=(),
            size=16 * MIB,
            static=True,
            miss_weight=0.02,
            pattern=AccessPattern("random", 0.8, reref_per_iteration=6.0),
        ),
    )

    @property
    def shift_time(self) -> float:
        """Wall-clock instant the hot set swaps (mid-timed-span)."""
        cal = self.calibration
        t_init_end = cal.ddr_time * self.init_fraction
        return t_init_end + (cal.ddr_time - t_init_end) / 2.0

    def idle_hot_object(self, t: float) -> str:
        """The hot array *not* being touched at wall-clock ``t``."""
        return "hot_black" if t < self.shift_time else "hot_red"

    def generate_window_stream(
        self,
        phase: PhaseSpec,
        t0: float,
        t1: float,
        live: dict[str, int],
        statics: dict[str, int],
        stack_base: int,
        touch_sets: dict[str, np.ndarray],
        stack_touch: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, dict[str, int], np.ndarray]:
        live = dict(live)
        live.pop(self.idle_hot_object(t0), None)
        return super().generate_window_stream(
            phase,
            t0,
            t1,
            live,
            statics,
            stack_base,
            touch_sets,
            stack_touch,
        )
