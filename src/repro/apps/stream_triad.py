"""STREAM Triad kernel (Figure 1's workload).

``a[i] = b[i] + s * c[i]`` over three large arrays. Figure 1 measures
the delivered bandwidth as a function of core count with the data in
DDR, in flat MCDRAM, and with MCDRAM in cache mode. Here the tier
curves come from the machine's bandwidth-saturation model and the
cache-mode curve from an actual direct-mapped simulation of the triad
access stream (the arrays fit in MCDRAM, so after the first sweep the
cache serves nearly everything — at the reduced cache-mode peak).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.directmap import DirectMappedCache
from repro.errors import WorkloadError
from repro.machine.bandwidth import BandwidthModel
from repro.machine.config import MachineConfig
from repro.units import CACHE_LINE, MIB


@dataclass(frozen=True, slots=True)
class TriadResult:
    """Delivered bandwidth per placement for one core count."""

    cores: int
    ddr_gbps: float
    mcdram_flat_gbps: float
    mcdram_cache_gbps: float


class StreamTriad:
    """The triad kernel over three ``array_bytes``-sized arrays."""

    def __init__(self, array_bytes: int = 16 * MIB, sweeps: int = 4) -> None:
        if array_bytes < CACHE_LINE:
            raise WorkloadError("array too small for one cache line")
        if sweeps < 2:
            raise WorkloadError("need >= 2 sweeps to expose cache reuse")
        self.array_bytes = array_bytes
        self.sweeps = sweeps

    def access_stream(self, stride: int = CACHE_LINE) -> np.ndarray:
        """Line-granular triad access stream: b, c, a interleaved, per
        sweep (write-allocate on a)."""
        n_lines = self.array_bytes // stride
        base_a = 0
        base_b = self.array_bytes * 2  # spaced so arrays do not overlap
        base_c = self.array_bytes * 4
        idx = np.arange(n_lines, dtype=np.int64) * stride
        one_sweep = np.empty(3 * n_lines, dtype=np.uint64)
        one_sweep[0::3] = (base_b + idx).astype(np.uint64)
        one_sweep[1::3] = (base_c + idx).astype(np.uint64)
        one_sweep[2::3] = (base_a + idx).astype(np.uint64)
        return np.tile(one_sweep, self.sweeps)

    def cache_mode_hit_ratio(self, mcdram_cache_bytes: int) -> float:
        """Measured hit ratio of the triad in an MCDRAM-sized
        direct-mapped cache (cold first sweep included)."""
        cache = DirectMappedCache(mcdram_cache_bytes, CACHE_LINE)
        hits = cache.access_stream(self.access_stream())
        return float(np.count_nonzero(hits)) / hits.size

    def bandwidth_sweep(
        self,
        machine: MachineConfig,
        core_counts: list[int],
        cache_capacity_bytes: int | None = None,
    ) -> list[TriadResult]:
        """Figure 1: the three bandwidth curves.

        ``cache_capacity_bytes`` sizes the simulated direct-mapped
        MCDRAM cache (defaults to a cache comfortably larger than the
        working set, as on the real machine where 3 STREAM arrays fit
        in 16 GiB).
        """
        model = BandwidthModel(machine)
        if cache_capacity_bytes is None:
            cache_capacity_bytes = 8 * self.array_bytes
        hit_ratio = self.cache_mode_hit_ratio(cache_capacity_bytes)
        results = []
        for cores in core_counts:
            results.append(
                TriadResult(
                    cores=cores,
                    ddr_gbps=model.tier_bandwidth(machine.slow_tier, cores)
                    / 1e9,
                    mcdram_flat_gbps=model.tier_bandwidth(
                        machine.fast_tier, cores
                    )
                    / 1e9,
                    mcdram_cache_gbps=model.cache_mode_bandwidth(
                        cores, hit_ratio=hit_ratio
                    )
                    / 1e9,
                )
            )
        return results
