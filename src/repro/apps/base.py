"""Application model base: inventories, streams, profiling, replay.

A :class:`SimApplication` describes one workload the way the paper's
framework perceives it:

* an **inventory** of allocation sites (:class:`ObjectSpec`) — the
  call-stack, per-instance size, instance count, lifetime (init-time
  persistent vs per-iteration churn scoped to a phase), static/dynamic
  kind, the share of LLC misses the object receives and the spatial
  access pattern of those misses;
* a **phase timeline** (:class:`PhaseSpec`) — which function is
  executing when, and which objects it touches (drives Figure 5);
* **calibration constants** (:class:`AppCalibration`) — the paper's
  DDR-run Figure of Merit, runtime and memory-boundedness, which
  anchor the execution model's absolute scale (the simulation provides
  the *relative* per-object structure).

All byte sizes in the inventory are *real* (paper-scale) values; the
simulation runs in a world scaled down by :attr:`SimApplication.scale`
so streams stay laptop-sized while capacity *ratios* (object/budget,
footprint/MCDRAM) are preserved. Instance counts, call-stacks and
time stamps are unscaled.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import WorkloadError
from repro.runtime.process import SimProcess
from repro.runtime.symbols import FunctionSymbol, ModuleImage
from repro.trace.tracefile import TraceFile
from repro.trace.tracer import Tracer, TracerConfig
from repro.units import CACHE_LINE, GIB, MIB


@dataclass(frozen=True, slots=True)
class AccessPattern:
    """Spatial shape of one object's LLC misses.

    ``kind``:
      * ``"sequential"`` — a strided walk over the hot span, identical
        every iteration (streaming arrays; cache-mode friendly when the
        hot span fits);
      * ``"random"`` — a fixed random touch set over the hot span
        (sparse/indirect access; conflict-prone in a direct-mapped
        cache).

    ``hot_fraction`` is the part of the object actually touched each
    iteration (hot working set).
    """

    kind: str = "sequential"
    hot_fraction: float = 1.0
    #: Times each hot line is re-referenced per iteration; drives the
    #: analytic MCDRAM-cache-mode hit model (fine-grained reuse means
    #: a line survives in a direct-mapped cache between touches).
    reref_per_iteration: float = 4.0
    #: Mean access cost in cycles of one miss to this object, as a
    #: Xeon-style PEBS PMU would report it. None: derived from the
    #: pattern kind (random gathers pay TLB/row-buffer misses on top
    #: of the raw access).
    mean_latency_cycles: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("sequential", "random"):
            raise WorkloadError(f"unknown access pattern {self.kind!r}")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise WorkloadError(
                f"hot fraction must be in (0,1], got {self.hot_fraction}"
            )
        if self.reref_per_iteration <= 0:
            raise WorkloadError("re-reference rate must be positive")
        if self.mean_latency_cycles is not None and self.mean_latency_cycles <= 0:
            raise WorkloadError("latency must be positive")

    @property
    def latency_cycles(self) -> int:
        """Effective per-miss access cost in cycles."""
        if self.mean_latency_cycles is not None:
            return self.mean_latency_cycles
        return 280 if self.kind == "random" else 160


@dataclass(frozen=True, slots=True)
class ObjectSpec:
    """One allocation site (or static variable) of an application."""

    name: str
    #: Call-stack, ROOT first: sequence of (function, line) pairs.
    #: Empty for statics.
    callstack: tuple[tuple[str, int], ...]
    #: Real bytes per allocation instance (paper scale).
    size: int
    #: Allocation instances at init (persistent objects only).
    count: int = 1
    #: Name of the phase this site is allocated in and freed after,
    #: once per iteration (allocation churn à la Lulesh). None for
    #: init-time persistent objects.
    churn_phase: str | None = None
    static: bool = False
    #: Relative share of the application's heap/static LLC misses.
    miss_weight: float = 0.0
    pattern: AccessPattern = AccessPattern()
    #: Phases (by name) whose execution touches this object; empty
    #: means "all phases" for persistent/static objects and "the churn
    #: phase" for churn objects.
    phases: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise WorkloadError(f"object {self.name!r}: size must be positive")
        if self.count < 1:
            raise WorkloadError(f"object {self.name!r}: count must be >= 1")
        if self.miss_weight < 0:
            raise WorkloadError(f"object {self.name!r}: negative miss weight")
        if self.static and self.churn_phase is not None:
            raise WorkloadError(f"object {self.name!r}: statics cannot churn")
        if not self.static and not self.callstack:
            raise WorkloadError(f"object {self.name!r}: dynamic needs a stack")

    @property
    def churn(self) -> bool:
        return self.churn_phase is not None

    def touches(self, phase_function: str) -> bool:
        """Is this object accessed while ``phase_function`` executes?"""
        if self.churn:
            touched = self.phases or (self.churn_phase,)
            return phase_function in touched
        return not self.phases or phase_function in self.phases


@dataclass(frozen=True, slots=True)
class PhaseSpec:
    """One phase (function) of the iteration body."""

    function: str
    #: Fraction of each iteration's wall time spent here.
    duration_fraction: float
    #: Instructions (relative units) executed per iteration in this
    #: phase — used to derive the MIPS series of Figure 5.
    instruction_weight: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.duration_fraction <= 1.0:
            raise WorkloadError("phase duration fraction must be in (0,1]")


@dataclass(frozen=True, slots=True)
class AppGeometry:
    """Execution geometry (Table I row: "Execution geometry")."""

    ranks: int = 64
    threads_per_rank: int = 4

    @property
    def total_threads(self) -> int:
        return self.ranks * self.threads_per_rank


@dataclass(frozen=True, slots=True)
class AppCalibration:
    """Anchors tying the model to the paper's measured absolute scale."""

    #: Figure of Merit of the all-DDR run (Figure 4's green line).
    fom_ddr: float
    #: Wall-clock of the all-DDR run, seconds.
    ddr_time: float
    #: Fraction of the DDR run spent waiting on main memory.
    memory_bound_fraction: float
    fom_name: str = "FOM"
    fom_units: str = "units/s"

    def __post_init__(self) -> None:
        if self.fom_ddr <= 0 or self.ddr_time <= 0:
            raise WorkloadError("calibration values must be positive")
        if not 0.0 < self.memory_bound_fraction < 1.0:
            raise WorkloadError("memory-bound fraction must be in (0,1)")

    @property
    def work(self) -> float:
        """Total FOM units of work in one run."""
        return self.fom_ddr * self.ddr_time

    @property
    def compute_time(self) -> float:
        return self.ddr_time * (1.0 - self.memory_bound_fraction)


#: Per-miss cost of a stack (spill) access in cycles.
STACK_LATENCY_CYCLES = 200


@dataclass(frozen=True, slots=True)
class WindowTruth:
    """Full miss counts of one ``run_timeline`` window — the unit the
    online evaluator scores placements against."""

    t0: float
    t1: float
    misses_by_site: dict[str, int]

    @property
    def total_misses(self) -> int:
        return sum(self.misses_by_site.values())


@dataclass
class GroundTruth:
    """What the simulated hardware knows (the framework only sees the
    sampled trace)."""

    #: Full LLC-miss counts per site name; stack misses under "<stack>".
    misses_by_site: dict[str, int] = field(default_factory=dict)
    #: Summed access latency (cycles) per site name.
    latency_by_site: dict[str, float] = field(default_factory=dict)
    #: Full miss stream in program order (scaled addresses).
    addresses: np.ndarray = field(default_factory=lambda: np.zeros(0, np.uint64))
    times: np.ndarray = field(default_factory=lambda: np.zeros(0, float))
    total_misses: int = 0
    #: Per-window miss counts in timeline order (phase-resolved truth).
    windows: list[WindowTruth] = field(default_factory=list)

    def miss_share(self, site: str) -> float:
        if self.total_misses == 0:
            return 0.0
        return self.misses_by_site.get(site, 0) / self.total_misses


@dataclass
class ProfilingRun:
    """Output of the instrumented (step 1) run of one rank.

    ``trace`` is either the row-oriented :class:`TraceFile` the tracer
    emits or an already-columnarised
    :class:`~repro.trace.columnar.ColumnarTrace` (the shared trace
    plane publishes the latter); every downstream consumer of the
    cell path accepts both. ``tracer``/``process`` are present only
    when the run came from an in-process instrumented execution — a
    run reconstructed from a shared plane has neither, since raw
    tracer/process state is process-local and never crosses the
    plane.
    """

    trace: "TraceFile | ColumnarTrace"
    ground_truth: GroundTruth
    tracer: Tracer | None = None
    process: SimProcess | None = None
    #: site name -> ObjectSpec for convenience.
    sites: dict[str, ObjectSpec] = field(default_factory=dict)


@dataclass
class ReplayResult:
    """Outcome of re-running the allocation timeline under a hook."""

    #: site name -> list of serving allocator names, one per instance.
    placements: dict[str, list[str]] = field(default_factory=dict)
    #: Fast-memory high-water mark in *real* (unscaled) bytes.
    hbw_hwm_bytes: int = 0
    #: Interposition + memkind-slow-path seconds (real, per rank).
    alloc_overhead_seconds: float = 0.0
    #: Stats object of the hook, if any.
    hook: object | None = None
    #: site name -> list of promoted *fractions* per instance (page-
    #: granular policies like numactl split objects across tiers).
    promoted_fractions: dict[str, list[float]] = field(default_factory=dict)

    def promoted_fraction(self, site: str, fast_allocator: str) -> float:
        """Average fraction of a site's traffic served by fast memory."""
        if site in self.promoted_fractions:
            fractions = self.promoted_fractions[site]
            return sum(fractions) / len(fractions) if fractions else 0.0
        served = self.placements.get(site, [])
        if not served:
            return 0.0
        return sum(1 for a in served if a == fast_allocator) / len(served)


class SimApplication:
    """Base class: subclasses fill the class attributes below."""

    #: Short identifier, e.g. ``"hpcg"``.
    name: str = "app"
    #: Pretty name for tables, e.g. ``"HPCG 3.0mod"``.
    title: str = "Application"
    language: str = "C++"
    parallelism: str = "MPI+OpenMP"
    problem_size: str = ""
    #: Table I "Lines of code".
    lines_of_code: int = 0
    #: Table I "Allocation statements", m/r/f/n/d/a/D format.
    allocation_statements: str = ""
    #: Table I "Number of allocations/process/second" (includes small
    #: untracked allocations the simulation does not replay).
    allocs_per_second_declared: float = 0.0
    geometry: AppGeometry = AppGeometry()
    calibration: AppCalibration = AppCalibration(
        fom_ddr=1.0, ddr_time=100.0, memory_bound_fraction=0.5
    )
    #: World scale: simulated bytes per real byte.
    scale: float = 1.0 / 64.0
    #: Iterations of the simulated main loop.
    n_iterations: int = 10
    #: Total LLC misses to synthesise over the run (full stream; the
    #: PEBS sampler sees 1/period of them).
    stream_misses: int = 50_000
    #: PEBS sampling period for this workload, chosen so the sampled
    #: count matches Table I's "Number of samples/process" (the paper
    #: uses 37,589 on hardware against billions of misses).
    sampling_period: int = 7
    #: Share of all LLC misses hitting the stack (register spills,
    #: automatic arrays) — traffic only numactl/cache-mode can serve
    #: from fast memory.
    stack_miss_fraction: float = 0.02
    #: Phases whose execution produces the stack misses; empty means
    #: "all phases, weighted by duration". SNAP concentrates its
    #: register-spill traffic in ``outer_src_calc`` (Figure 5).
    stack_phases: tuple[str, ...] = ()
    #: Real allocations each simulated allocation stands for (used to
    #: scale interposition/memkind overhead to Table I allocation
    #: rates).
    alloc_count_multiplier: float = 1.0
    #: Inventory of allocation sites and statics.
    objects: tuple[ObjectSpec, ...] = ()
    #: Iteration body phases (one generic phase by default).
    phases: tuple[PhaseSpec, ...] = (PhaseSpec("main_loop", 1.0),)
    #: Init-phase duration as a fraction of total runtime.
    init_fraction: float = 0.05

    # ------------------------------------------------------------------
    # construction and derived properties
    # ------------------------------------------------------------------

    def __init__(self) -> None:
        if not self.objects:
            raise WorkloadError(f"{self.name}: empty inventory")
        total = sum(o.miss_weight for o in self.objects)
        if total <= 0:
            raise WorkloadError(f"{self.name}: no object has miss weight")
        if abs(sum(p.duration_fraction for p in self.phases) - 1.0) > 1e-6:
            raise WorkloadError(f"{self.name}: phase fractions must sum to 1")
        names = [o.name for o in self.objects]
        if len(set(names)) != len(names):
            raise WorkloadError(f"{self.name}: duplicate object names")
        phase_names = {p.function for p in self.phases}
        for o in self.objects:
            if o.churn and o.churn_phase not in phase_names:
                raise WorkloadError(
                    f"{self.name}: churn phase {o.churn_phase!r} of "
                    f"{o.name!r} is not a declared phase"
                )

    @property
    def module_name(self) -> str:
        return self.name

    @property
    def source_file(self) -> str:
        ext = {"C": "c", "C++": "cpp", "Fortran": "f90"}.get(self.language, "c")
        return f"{self.name}.{ext}"

    def scaled(self, nbytes: int) -> int:
        """Real bytes -> simulated bytes (>= 1 page per instance)."""
        return max(4096, int(nbytes * self.scale))

    @property
    def footprint_real(self) -> int:
        """Peak concurrent heap+static footprint per rank, real bytes."""
        persistent = sum(o.size * o.count for o in self.objects if not o.churn)
        churn_by_phase: dict[str, int] = {}
        for o in self.objects:
            if o.churn:
                churn_by_phase[o.churn_phase] = (
                    churn_by_phase.get(o.churn_phase, 0) + o.size
                )
        churn_peak = max(churn_by_phase.values(), default=0)
        return persistent + churn_peak

    @property
    def hot_footprint_real(self) -> int:
        """Bytes of data actually touched per iteration (real scale).

        The cache-mode model preserves the ratio between this and the
        per-rank MCDRAM share when it scales its direct-mapped cache.
        """
        return sum(
            int(o.size * o.pattern.hot_fraction) * o.count
            for o in self.objects
            if o.miss_weight > 0
        )

    @property
    def mcdram_share_real(self) -> int:
        """Per-rank slice of the 16 GiB MCDRAM (real bytes)."""
        return (16 * GIB) // self.geometry.ranks

    def site_key(self, spec: ObjectSpec) -> tuple[tuple[str, str, int], ...]:
        """Translated call-stack key of a dynamic site (leaf first).

        Includes the implicit ``main`` root frame the timeline pushes.
        """
        if spec.static:
            raise WorkloadError(f"{spec.name} is static; it has no call-stack")
        frames = [
            (fn, self.source_file, ln) for fn, ln in reversed(spec.callstack)
        ]
        frames.append(("main", self.source_file, 1))
        return tuple(frames)

    def key_to_site_name(self) -> dict[tuple, str]:
        """Map translated call-stack key -> site name."""
        return {
            self.site_key(o): o.name for o in self.objects if not o.static
        }

    def find_object(self, name: str) -> ObjectSpec:
        for o in self.objects:
            if o.name == name:
                return o
        raise WorkloadError(f"{self.name}: no object named {name!r}")

    # ------------------------------------------------------------------
    # program image
    # ------------------------------------------------------------------

    def build_modules(self) -> list[ModuleImage]:
        """Synthesize the binary image from the inventory call-stacks."""
        max_line: dict[str, int] = {"main": 2}
        for spec in self.objects:
            if spec.static:
                continue
            for fn, line in spec.callstack:
                max_line[fn] = max(max_line.get(fn, 1), line)
        for phase in self.phases:
            max_line.setdefault(phase.function, 2)
        functions = []
        offset = 0
        for fn in sorted(max_line):
            size = max_line[fn] + 16
            functions.append(
                FunctionSymbol(
                    name=fn, offset=offset, size=size, file=self.source_file
                )
            )
            offset += size + 16
        return [
            ModuleImage(
                name=self.module_name, size=offset + 64, functions=functions
            )
        ]

    def create_process(
        self,
        seed: int = 0,
        rank: int = 0,
        hbw_capacity: int | None = None,
    ) -> SimProcess:
        """A fresh process with statics registered and arenas sized.

        ``hbw_capacity`` is the *scaled* physical MCDRAM available to
        this rank; defaults to the scaled per-rank MCDRAM share.
        """
        if hbw_capacity is None:
            hbw_capacity = self.scaled(self.mcdram_share_real)
        heap_size = max(64 * MIB, 8 * self.scaled(self.footprint_real))
        static_need = sum(
            self.scaled(o.size) for o in self.objects if o.static
        )
        process = SimProcess(
            modules=self.build_modules(),
            rank=rank,
            seed=seed,
            static_segment_size=max(64 * MIB, 2 * static_need),
            heap_size=heap_size,
            hbw_size=max(hbw_capacity * 2, 16 * MIB),
            hbw_capacity=hbw_capacity,
        )
        # memkind's 1-2 MiB slow path is keyed on *real* sizes.
        process.memkind.penalty_size_multiplier = 1.0 / self.scale
        for spec in self.objects:
            if spec.static:
                process.register_static(spec.name, self.scaled(spec.size))
        return process

    # ------------------------------------------------------------------
    # allocation timeline
    # ------------------------------------------------------------------

    def _alloc_instance(self, process: SimProcess, spec: ObjectSpec) -> int:
        """Perform one allocation with the spec's call context."""
        from contextlib import ExitStack

        with ExitStack() as stack:
            stack.enter_context(process.in_function(self.module_name, "main", 1))
            for fn, line in spec.callstack:
                stack.enter_context(
                    process.in_function(self.module_name, fn, line)
                )
            return process.malloc(self.scaled(spec.size))

    def _persistent_specs(self) -> list[ObjectSpec]:
        return [o for o in self.objects if not o.static and not o.churn]

    def _churn_specs(self, phase_function: str) -> list[ObjectSpec]:
        return [o for o in self.objects if o.churn_phase == phase_function]

    def _static_specs(self) -> list[ObjectSpec]:
        return [o for o in self.objects if o.static]

    def run_timeline(
        self,
        process: SimProcess,
        on_window: Callable[[int, PhaseSpec, float, float, dict[str, int]], None]
        | None = None,
        on_phase: Callable[[str, float], None] | None = None,
    ) -> dict[str, list[str]]:
        """Drive the allocation/phase timeline of one run.

        ``on_window(iteration, phase, t0, t1, live)`` fires once per
        (iteration, phase) with the wall-time window and the live
        dynamic addresses (site name -> base address).
        ``on_phase(function, time)`` fires at each phase entry.
        Returns the per-site list of serving allocator names.
        """
        cal = self.calibration
        t_init_end = cal.ddr_time * self.init_fraction
        iter_span = (cal.ddr_time - t_init_end) / self.n_iterations

        placements: dict[str, list[str]] = {o.name: [] for o in self.objects}
        live: dict[str, int] = {}

        # Statics are "placed" at load time by definition.
        for spec in self._static_specs():
            placements[spec.name].append("static")

        # Init-time allocations, in inventory order (this order is what
        # numactl's FCFS policy consumes).
        init_specs = self._persistent_specs()
        for j, spec in enumerate(init_specs):
            process.advance(
                max(
                    0.0,
                    t_init_end * (j + 1) / (len(init_specs) + 1)
                    - process.clock,
                )
            )
            address = 0
            for _ in range(spec.count):
                address = self._alloc_instance(process, spec)
                placements[spec.name].append(
                    self._serving_allocator(process, address)
                )
            live[spec.name] = address  # last instance's base

        process.advance(max(0.0, t_init_end - process.clock))

        for it in range(self.n_iterations):
            t0 = t_init_end + it * iter_span
            process.advance(max(0.0, t0 - process.clock))
            t_cursor = t0
            for phase in self.phases:
                span = phase.duration_fraction * iter_span
                t_p0, t_p1 = t_cursor, t_cursor + span
                churn_here: list[tuple[str, int]] = []
                for spec in self._churn_specs(phase.function):
                    address = self._alloc_instance(process, spec)
                    placements[spec.name].append(
                        self._serving_allocator(process, address)
                    )
                    churn_here.append((spec.name, address))
                    live[spec.name] = address
                if on_phase is not None:
                    on_phase(phase.function, t_p0)
                if on_window is not None:
                    on_window(it, phase, t_p0, t_p1, dict(live))
                process.advance(max(0.0, t_p1 - 1e-6 * span - process.clock))
                for name, address in churn_here:
                    process.free(address)
                    live.pop(name, None)
                process.advance(max(0.0, t_p1 - process.clock))
                t_cursor = t_p1
        process.advance(max(0.0, cal.ddr_time - process.clock))
        return placements

    @staticmethod
    def _serving_allocator(process: SimProcess, address: int) -> str:
        for allocator in (process.memkind, process.posix):
            if allocator.live.lookup_base(address) is not None:
                return allocator.name
        raise WorkloadError(f"address {address:#x} not live after malloc")

    # ------------------------------------------------------------------
    # miss-stream generation
    # ------------------------------------------------------------------

    def _touch_offsets(
        self, spec: ObjectSpec, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-iteration touch set (byte offsets into the object).

        Fixed across iterations, which is what gives iterative
        applications their cross-iteration reuse.
        """
        span = max(
            CACHE_LINE,
            int(self.scaled(spec.size) * spec.pattern.hot_fraction),
        )
        if spec.pattern.kind == "sequential":
            step = max(
                CACHE_LINE, (span // max(n, 1)) & ~(CACHE_LINE - 1)
            )
            offsets = (np.arange(n, dtype=np.int64) * step) % span
        else:
            lines = max(1, span // CACHE_LINE)
            offsets = (
                rng.integers(0, lines, size=n, dtype=np.int64) * CACHE_LINE
            )
        return offsets

    def _misses_per_iteration(self) -> dict[str, int]:
        """Misses each object receives per iteration of the stream."""
        total_weight = sum(o.miss_weight for o in self.objects)
        heap_misses = self.stream_misses * (1.0 - self.stack_miss_fraction)
        out: dict[str, int] = {}
        for spec in self.objects:
            share = spec.miss_weight / total_weight
            out[spec.name] = max(
                0, int(round(heap_misses * share / self.n_iterations))
            )
        return out

    def _stack_misses_per_iteration(self) -> int:
        return int(
            round(
                self.stream_misses
                * self.stack_miss_fraction
                / self.n_iterations
            )
        )

    def _touching_phase_count(self, spec: ObjectSpec) -> int:
        return sum(1 for p in self.phases if spec.touches(p.function))

    def _stack_share_of_phase(self, phase: PhaseSpec) -> float:
        """Fraction of each iteration's stack misses in this phase."""
        eligible = [
            p
            for p in self.phases
            if not self.stack_phases or p.function in self.stack_phases
        ]
        if phase not in eligible:
            return 0.0
        total = sum(p.duration_fraction for p in eligible)
        return phase.duration_fraction / total

    @classmethod
    def _interleave_like(
        cls, companions: list[np.ndarray], arrays: list[np.ndarray],
        chunks: int = 8,
    ) -> np.ndarray:
        """Interleave ``companions`` with the exact permutation
        :meth:`_interleave` applies to ``arrays`` (pairwise aligned)."""
        paired = [c for c, a in zip(companions, arrays) if a.size]
        if not paired:
            return np.zeros(0, dtype=np.int64)
        pieces: list[np.ndarray] = []
        splits = [np.array_split(c, chunks) for c in paired]
        for chunk in range(chunks):
            for split in splits:
                pieces.append(split[chunk])
        return np.concatenate(pieces)

    @staticmethod
    def _interleave(arrays: list[np.ndarray], chunks: int = 8) -> np.ndarray:
        """Deterministic round-robin merge preserving intra-array order."""
        arrays = [a for a in arrays if a.size]
        if not arrays:
            return np.zeros(0, dtype=np.uint64)
        pieces: list[np.ndarray] = []
        splits = [np.array_split(a, chunks) for a in arrays]
        for c in range(chunks):
            for s in splits:
                pieces.append(s[c])
        return np.concatenate(pieces)

    def generate_window_stream(
        self,
        phase: PhaseSpec,
        t0: float,
        t1: float,
        live: dict[str, int],
        statics: dict[str, int],
        stack_base: int,
        touch_sets: dict[str, np.ndarray],
        stack_touch: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, dict[str, int], np.ndarray]:
        """Addresses/times/latencies of one (iteration, phase) window's
        misses. Latencies model a Xeon-style PMU; the tracer decides
        whether to record them."""
        per_iter = self._misses_per_iteration()
        counts: dict[str, int] = {}
        arrays: list[np.ndarray] = []
        latency_arrays: list[np.ndarray] = []

        for spec in self.objects:
            if not spec.touches(phase.function):
                continue
            base = (
                statics.get(spec.name)
                if spec.static
                else live.get(spec.name)
            )
            if base is None:
                continue
            n = per_iter[spec.name] // max(self._touching_phase_count(spec), 1)
            if n == 0:
                continue
            offsets = touch_sets[spec.name][:n]
            arrays.append((base + offsets).astype(np.uint64))
            latency_arrays.append(
                np.full(offsets.size, spec.pattern.latency_cycles,
                        dtype=np.int64)
            )
            counts[spec.name] = counts.get(spec.name, 0) + int(offsets.size)

        n_stack = int(
            round(
                self._stack_misses_per_iteration()
                * self._stack_share_of_phase(phase)
            )
        )
        if n_stack > 0:
            offs = stack_touch[:n_stack]
            arrays.append((stack_base + offs).astype(np.uint64))
            latency_arrays.append(
                np.full(offs.size, STACK_LATENCY_CYCLES, dtype=np.int64)
            )
            counts["<stack>"] = counts.get("<stack>", 0) + int(offs.size)

        merged = self._interleave(arrays)
        latencies = self._interleave_like(latency_arrays, arrays)
        if merged.size:
            times = t0 + (np.arange(merged.size) + 0.5) * (t1 - t0) / (
                merged.size + 1
            )
        else:
            times = np.zeros(0, dtype=float)
        return merged, times, counts, latencies

    # ------------------------------------------------------------------
    # profiling run (framework step 1)
    # ------------------------------------------------------------------

    def run_profiling(
        self,
        seed: int = 0,
        tracer_config: TracerConfig | None = None,
    ) -> ProfilingRun:
        """Execute the instrumented run of one representative rank."""
        process = self.create_process(seed=seed)
        tracer = Tracer(
            config=tracer_config
            or TracerConfig(sampling_period=self.sampling_period),
            application=self.name,
            rank=0,
        )
        tracer.attach(process)

        name_hash = zlib.crc32(self.name.encode())
        rng = np.random.default_rng(np.random.SeedSequence([name_hash, seed]))
        per_iter = self._misses_per_iteration()
        touch_sets = {
            spec.name: self._touch_offsets(
                spec, max(per_iter[spec.name], 1), rng
            )
            for spec in self.objects
        }
        stack_touch = (
            rng.integers(
                0,
                max(
                    1,
                    min(process.stack_region.size, 64 * 1024) // CACHE_LINE,
                ),
                size=max(1, self._stack_misses_per_iteration()),
                dtype=np.int64,
            )
            * CACHE_LINE
        )
        statics = {
            name: region.base for name, region in process.statics.items()
        }

        truth = GroundTruth()
        all_addresses: list[np.ndarray] = []
        all_times: list[np.ndarray] = []

        def on_window(
            it: int,
            phase: PhaseSpec,
            t0: float,
            t1: float,
            live: dict[str, int],
        ) -> None:
            addresses, times, counts, latencies = self.generate_window_stream(
                phase,
                t0,
                t1,
                live,
                statics,
                process.stack_region.base,
                touch_sets,
                stack_touch,
            )
            for site, n in counts.items():
                truth.misses_by_site[site] = (
                    truth.misses_by_site.get(site, 0) + n
                )
                latency = (
                    STACK_LATENCY_CYCLES
                    if site == "<stack>"
                    else self.find_object(site).pattern.latency_cycles
                )
                truth.latency_by_site[site] = (
                    truth.latency_by_site.get(site, 0.0) + n * latency
                )
            truth.total_misses += int(addresses.size)
            truth.windows.append(
                WindowTruth(t0=t0, t1=t1, misses_by_site=dict(counts))
            )
            all_addresses.append(addresses)
            all_times.append(times)
            tracer.record_misses(addresses, times, latencies)

        def on_phase(function: str, time: float) -> None:
            tracer.record_phase(function, time)

        self.run_timeline(process, on_window=on_window, on_phase=on_phase)

        truth.addresses = (
            np.concatenate(all_addresses)
            if all_addresses
            else np.zeros(0, np.uint64)
        )
        truth.times = (
            np.concatenate(all_times) if all_times else np.zeros(0, float)
        )
        return ProfilingRun(
            trace=tracer.trace,
            ground_truth=truth,
            tracer=tracer,
            process=process,
            sites={o.name: o for o in self.objects},
        )

    # ------------------------------------------------------------------
    # placed re-execution (framework step 4, and baselines)
    # ------------------------------------------------------------------

    def replay_with_hook(
        self,
        hook_factory: Callable[[SimProcess], object] | None,
        seed: int = 1,
        hbw_capacity_real: int | None = None,
    ) -> ReplayResult:
        """Re-run the allocation timeline under an interposition hook.

        ``hook_factory`` builds the hook for the fresh process (None
        replays the plain DDR run). ``hbw_capacity_real`` overrides the
        per-rank physical MCDRAM share (real bytes).
        """
        capacity = (
            self.scaled(hbw_capacity_real)
            if hbw_capacity_real is not None
            else None
        )
        process = self.create_process(seed=seed, hbw_capacity=capacity)
        hook = hook_factory(process) if hook_factory is not None else None
        if hook is not None:
            process.install_malloc_hook(hook)

        placements = self.run_timeline(process)

        hwm_scaled = getattr(hook, "hbw_hwm_bytes", 0)
        overhead = getattr(hook, "overhead_seconds", 0.0)
        fractions = getattr(hook, "promoted_fractions_by_key", None)
        promoted_fractions: dict[str, list[float]] = {}
        if fractions:
            name_by_key = self.key_to_site_name()
            for key, fracs in fractions.items():
                site = name_by_key.get(key)
                if site is not None:
                    promoted_fractions[site] = list(fracs)
        return ReplayResult(
            placements=placements,
            hbw_hwm_bytes=int(hwm_scaled / self.scale),
            alloc_overhead_seconds=float(overhead)
            * self.alloc_count_multiplier,
            hook=hook,
            promoted_fractions=promoted_fractions,
        )
