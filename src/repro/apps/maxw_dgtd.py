"""MAXW-DGTD model (Table I, Figures 4s-4u).

Discontinuous Galerkin Time-Domain solver for computational
bioelectromagnetics (4th-order Lagrange basis on tetrahedra,
simulation of human exposure to electromagnetic waves). Table I:
20,835 LoC Fortran, MPI+OpenMP, 64 ranks x 4 threads, 4th order
mi=3, FOM in iterations/s, 75 allocate / 71 deallocate statements,
15,853.98 allocations/process/s (by far the most allocation-active),
285 MB/process HWM (18.3 GB total), 2,072 samples/process, 0.65 %
monitoring overhead.

Paper results to reproduce: cache mode is *slightly* superior to the
framework's best. The 18.3 GB total working set barely exceeds the
16 GB MCDRAM; misses are spread across many medium-sized element
arrays (75 allocation sites), all with regular per-element access —
ideal for a memory-side cache, while the framework at 256 MB/rank
promotes almost everything anyway and lands just below (it cannot
catch the stack/automatic Fortran arrays).
"""

from __future__ import annotations

from repro.apps.base import (
    AccessPattern,
    AppCalibration,
    AppGeometry,
    ObjectSpec,
    PhaseSpec,
    SimApplication,
)
from repro.units import MIB


def _field(name: str, line: int, size_mb: int, weight: float) -> ObjectSpec:
    return ObjectSpec(
        name=name,
        callstack=(("init_fields", line),),
        size=size_mb * MIB,
        miss_weight=weight,
        pattern=AccessPattern("sequential", 0.85, reref_per_iteration=28.0),
    )


class MaxwDGTD(SimApplication):
    name = "maxw-dgtd"
    title = "MAXW-DGTD"
    language = "Fortran"
    parallelism = "MPI+OpenMP"
    problem_size = "4th order mi=3"
    lines_of_code = 20835
    allocation_statements = "0/0/0/0/0/75/71"
    allocs_per_second_declared = 15853.98
    geometry = AppGeometry(ranks=64, threads_per_rank=4)
    calibration = AppCalibration(
        fom_ddr=1.75,
        ddr_time=502.0,
        memory_bound_fraction=0.34,
        fom_name="FOM",
        fom_units="Iterations/s",
    )
    n_iterations = 12
    stream_misses = 30_000
    sampling_period = 15  # 30000/15 = 2k samples (Table I: 2,072)
    #: Fortran automatic (stack) arrays in the per-element kernels —
    #: a DGTD solver keeps whole local element matrices on the stack,
    #: visible to numactl/cache mode only.
    stack_miss_fraction = 0.12

    phases = (
        PhaseSpec("compute_volume_integrals", 0.55, instruction_weight=1.1),
        PhaseSpec("compute_surface_integrals", 0.45, instruction_weight=1.0),
    )

    objects = (
        # Allocated first: interpolation/projection tables built during
        # setup — cold, but FCFS policies spend MCDRAM on them.
        ObjectSpec(
            name="aux_mesh_tables",
            callstack=(("build_interp_tables", 7),),
            size=75 * MIB,
            miss_weight=0.01,
            pattern=AccessPattern("sequential", 0.3, reref_per_iteration=2.0),
            phases=("compute_volume_integrals",),
        ),
        _field("e_field", 5, 30, 0.16),
        _field("h_field", 9, 30, 0.16),
        _field("e_field_prev", 13, 30, 0.10),
        _field("h_field_prev", 17, 30, 0.10),
        ObjectSpec(
            name="flux_faces",
            callstack=(("init_faces", 8),),
            size=60 * MIB,
            miss_weight=0.18,
            pattern=AccessPattern("random", 0.9, reref_per_iteration=20.0),
            phases=("compute_surface_integrals",),
        ),
        ObjectSpec(
            name="basis_matrices",
            callstack=(("init_basis", 6),),
            size=25 * MIB,
            miss_weight=0.16,
            pattern=AccessPattern("random", 1.0, reref_per_iteration=30.0),
            phases=("compute_volume_integrals",),
        ),
        ObjectSpec(
            name="mesh_connectivity",
            callstack=(("read_mesh", 12),),
            size=30 * MIB,
            miss_weight=0.06,
            pattern=AccessPattern("sequential", 0.5, reref_per_iteration=4.0),
        ),
    )
