"""Application registry: name -> model factory."""

from __future__ import annotations

from typing import Callable, Iterator

from repro.apps.base import SimApplication
from repro.apps.cgpop import CGPOP
from repro.apps.gtcp import GTCP
from repro.apps.hpcg import HPCG
from repro.apps.lulesh import Lulesh
from repro.apps.maxw_dgtd import MaxwDGTD
from repro.apps.minife import MiniFE
from repro.apps.nas_bt import NasBT
from repro.apps.snap import SNAP
from repro.errors import WorkloadError

_REGISTRY: dict[str, Callable[[], SimApplication]] = {
    "hpcg": HPCG,
    "lulesh": Lulesh,
    "nas-bt": NasBT,
    "minife": MiniFE,
    "cgpop": CGPOP,
    "snap": SNAP,
    "maxw-dgtd": MaxwDGTD,
    "gtc-p": GTCP,
}

#: Table I order.
APP_NAMES: tuple[str, ...] = tuple(_REGISTRY)


def get_app(name: str) -> SimApplication:
    """Instantiate an application model by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown application {name!r}; have {sorted(_REGISTRY)}"
        ) from None
    return factory()


def iter_apps() -> Iterator[SimApplication]:
    """All Table I applications, in Table I order."""
    for name in APP_NAMES:
        yield get_app(name)
