"""Application registry: name -> model factory."""

from __future__ import annotations

from typing import Callable, Iterator

from repro.apps.base import SimApplication
from repro.apps.cgpop import CGPOP
from repro.apps.gtcp import GTCP
from repro.apps.hpcg import HPCG
from repro.apps.lulesh import Lulesh
from repro.apps.maxw_dgtd import MaxwDGTD
from repro.apps.minife import MiniFE
from repro.apps.nas_bt import NasBT
from repro.apps.phaseshift import PhaseShift
from repro.apps.snap import SNAP
from repro.errors import WorkloadError

#: Table I order — only the paper's applications; synthetic extras
#: (below) are resolvable by name but stay out of Table I sweeps.
APP_NAMES: tuple[str, ...] = (
    "hpcg",
    "lulesh",
    "nas-bt",
    "minife",
    "cgpop",
    "snap",
    "maxw-dgtd",
    "gtc-p",
)

_REGISTRY: dict[str, Callable[[], SimApplication]] = {
    "hpcg": HPCG,
    "lulesh": Lulesh,
    "nas-bt": NasBT,
    "minife": MiniFE,
    "cgpop": CGPOP,
    "snap": SNAP,
    "maxw-dgtd": MaxwDGTD,
    "gtc-p": GTCP,
    "phaseshift": PhaseShift,
}


def get_app(name: str) -> SimApplication:
    """Instantiate an application model by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown application {name!r}; have {sorted(_REGISTRY)}"
        ) from None
    return factory()


def iter_apps() -> Iterator[SimApplication]:
    """All Table I applications, in Table I order."""
    for name in APP_NAMES:
        yield get_app(name)
