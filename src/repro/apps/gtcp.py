"""GTC-P 160328 model (Table I, Figures 4v-4x).

Princeton Gyrokinetic Toroidal Code: plasma turbulence in Tokamak
fusion devices — particles accelerated around a toroidal cavity by a
confining magnetic field. Table I: 8,362 LoC C, MPI+OpenMP, 64 ranks
x 4 threads, 861,390 grid / 50 its, FOM in iterations/s, 156 malloc /
156 free statements, 20.57 allocations/process/s, 1,329 MB/process
HWM (85.1 GB total — the largest of the suite), 17,254
samples/process, 0.78 % monitoring overhead.

Paper results to reproduce: the framework wins, and the *density*
strategy beats the miss ranking — the particle push/gather kernels
hammer small grid/field arrays (high misses per byte), while the huge
particle arrays soak up raw miss counts but cannot fit in any budget;
ranking by density spends the budget on the grid arrays instead of
half of one particle array. numactl is poor: the particle arrays are
allocated first and exhaust the share. Cache mode suffers from the
random particle->grid scatter/gather conflicts.
"""

from __future__ import annotations

from repro.apps.base import (
    AccessPattern,
    AppCalibration,
    AppGeometry,
    ObjectSpec,
    PhaseSpec,
    SimApplication,
)
from repro.units import MIB


class GTCP(SimApplication):
    name = "gtc-p"
    title = "GTC-P 160328"
    language = "C"
    parallelism = "MPI+OpenMP"
    problem_size = "861,390 grid, 50 its"
    lines_of_code = 8362
    allocation_statements = "156/0/156/0/0/0/0/0"
    allocs_per_second_declared = 20.57
    geometry = AppGeometry(ranks=64, threads_per_rank=4)
    calibration = AppCalibration(
        fom_ddr=0.085,
        ddr_time=604.0,
        memory_bound_fraction=0.45,
        fom_name="FOM",
        fom_units="Iterations/s",
    )
    n_iterations = 15
    stream_misses = 120_000
    sampling_period = 7  # 120000/7 ~ 17.1k samples (Table I: 17,254)
    stack_miss_fraction = 0.02

    phases = (
        PhaseSpec("push_particles", 0.45, instruction_weight=1.1),
        PhaseSpec("charge_deposition", 0.35, instruction_weight=1.0),
        PhaseSpec("field_solve", 0.20, instruction_weight=0.8),
    )

    objects = (
        # Particle arrays: allocated first, enormous, linear sweeps.
        ObjectSpec(
            name="particle_coords",
            callstack=(("setup_particles", 9),),
            size=130 * MIB,
            count=4,  # grown in four species chunks
            miss_weight=0.15,
            pattern=AccessPattern("sequential", 0.8, reref_per_iteration=2.0),
            phases=("push_particles", "charge_deposition"),
        ),
        ObjectSpec(
            name="particle_velocities",
            callstack=(("setup_particles", 15),),
            size=400 * MIB,
            miss_weight=0.10,
            pattern=AccessPattern("sequential", 0.8, reref_per_iteration=2.0),
            phases=("push_particles",),
        ),
        ObjectSpec(
            name="particle_aux",
            callstack=(("setup_particles", 21),),
            size=260 * MIB,
            miss_weight=0.05,
            pattern=AccessPattern("sequential", 0.7, reref_per_iteration=2.0),
            phases=("charge_deposition",),
        ),
        # Grid/field arrays: small, hammered by gather/scatter —
        # exactly what the density strategy promotes.
        ObjectSpec(
            name="field_grid",
            callstack=(("setup_grid", 7),),
            size=52 * MIB,
            miss_weight=0.22,
            pattern=AccessPattern("random", 1.0, reref_per_iteration=15.0),
        ),
        ObjectSpec(
            name="charge_density_grid",
            callstack=(("setup_grid", 13),),
            size=40 * MIB,
            miss_weight=0.18,
            pattern=AccessPattern("random", 1.0, reref_per_iteration=15.0),
            phases=("charge_deposition", "field_solve"),
        ),
        ObjectSpec(
            name="poisson_workspace",
            callstack=(("setup_poisson", 10),),
            size=28 * MIB,
            miss_weight=0.14,
            pattern=AccessPattern("random", 0.9, reref_per_iteration=8.0),
            phases=("field_solve",),
        ),
        # The flux-surface-averaged field: tiny and hammered by every
        # particle — the highest-value 12 MB of the whole run, which
        # is why the dFOM/MByte sweet spot sits at the 32 MB budget.
        ObjectSpec(
            name="flux_surface_avg",
            callstack=(("setup_grid", 19),),
            size=12 * MIB,
            miss_weight=0.14,
            pattern=AccessPattern("random", 1.0, reref_per_iteration=20.0),
        ),
        # Diagnostics: cold bulk.
        ObjectSpec(
            name="diagnostic_buffers",
            callstack=(("setup_diagnostics", 8),),
            size=22 * MIB,
            miss_weight=0.02,
            pattern=AccessPattern("sequential", 0.5, reref_per_iteration=2.0),
            phases=("field_solve",),
        ),
    )
