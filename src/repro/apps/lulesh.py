"""Lulesh 2.0 model (Table I, Figures 4d-4f).

Livermore Unstructured Lagrange Explicit Shock Hydrodynamics proxy.
Table I: 7,240 LoC C++, MPI+OpenMP, 64 ranks x 4 threads, 96^3 for 50
iterations, FOM in z/s, 1 malloc / 35 new / 23 delete statements,
29.48 allocations/process/s, 859 MB/process HWM (55.0 GB total),
3,201 samples/process, 0.29 % monitoring overhead. The paper
compiles it with ``-fno-inline`` because aggressive inlining merges
allocation call-stacks.

Paper results to reproduce: **cache mode wins** (+46.98 % over DDR,
+12.68 % over the framework's best, density at 256 MB); the framework
is *misled* by allocation churn — "it allocates and deallocates many
objects during the application run ... hmem_advisor considers data
objects alive for the whole execution" — and forcing a virtual 512 MB
advisor budget while enforcing 256 MB shortens the gap. autohbw
*decreases* performance by ~8 %: it promotes non-critical objects
(limiting its impact) and pays the slow 1-2 MiB memkind path for the
per-element transients it promotes inside the timed loop. The
density strategy beats the miss ranking.

Inventory rationale:

* persistent mesh arrays have small per-iteration hot sets with heavy
  re-reference — which is why the memory-side cache works so well;
* per-phase scratch arrays (three nodal + four element, 25-30 MB)
  churn every iteration; their *summed* max sizes exceed any budget
  although the instantaneous footprint is one phase's worth —
  reproducing the advisor's static-address-space blind spot;
* fifteen ~1.7 MiB per-element temporaries churn in the constraint
  phase: 96^3/64 ranks is 45^3 elements x 8 B ~ 0.7-1.7 MiB per
  field — these are the allocations Table I's 29.48 allocs/s counts,
  nearly valueless for placement (tiny miss share) yet promoted by
  any size-threshold policy, which then pays memkind's slow path;
* cold tables (material EOS, connectivity) are allocated *first*, so
  FCFS policies (numactl, autohbw) spend MCDRAM on them.
"""

from __future__ import annotations

from repro.apps.base import (
    AccessPattern,
    AppCalibration,
    AppGeometry,
    ObjectSpec,
    PhaseSpec,
    SimApplication,
)
from repro.units import KIB, MIB

#: Persistent arrays: ~1/3 of each array is hot per iteration and each
#: hot line is re-touched ~12x (gather/scatter inside the kernels).
_PERSIST = AccessPattern("sequential", 0.30, reref_per_iteration=12.0)
#: Phase scratch: written and re-read many times within its phase.
_SCRATCH = AccessPattern("sequential", 1.0, reref_per_iteration=24.0)


def _scratch(name, fn, line, size, weight, phase):
    return ObjectSpec(
        name=name,
        callstack=((fn, line),),
        size=size,
        churn_phase=phase,
        miss_weight=weight,
        pattern=_SCRATCH,
    )


def _tiny(index: int) -> ObjectSpec:
    """One ~1.7 MiB per-element transient in the constraint phase."""
    return ObjectSpec(
        name=f"elem_tmp_{index:02d}",
        callstack=(("CalcTimeConstraintsForElems", 4 + index),),
        size=1740 * KIB,
        churn_phase="CalcTimeConstraints",
        # Effectively never sampled: these transients are written once
        # and consumed immediately (they live in the LLC), so no
        # placement strategy ever selects them — but any size-threshold
        # library still promotes them and pays the slow memkind path.
        miss_weight=0.0,
        pattern=AccessPattern("sequential", 1.0, reref_per_iteration=24.0),
    )


class Lulesh(SimApplication):
    name = "lulesh"
    title = "Lulesh 2.0"
    language = "C++"
    parallelism = "MPI+OpenMP"
    problem_size = "96^3, 50 its"
    lines_of_code = 7240
    allocation_statements = "1/0/1/35/23/0/0"
    allocs_per_second_declared = 29.48
    geometry = AppGeometry(ranks=64, threads_per_rank=4)
    calibration = AppCalibration(
        fom_ddr=7000.0,
        ddr_time=352.0,
        memory_bound_fraction=0.50,
        fom_name="FOM",
        fom_units="z/s",
    )
    n_iterations = 20
    stream_misses = 64_000
    sampling_period = 20  # 64000/20 = 3.2k samples (Table I: 3,201)
    stack_miss_fraction = 0.02
    #: Table I reports 29.48 allocs/s (~10.4k over the run); the
    #: simulation replays 20 iterations x ~22 churn sites, so each
    #: simulated allocation stands for ~24 real ones when scaling
    #: interposition/memkind overhead.
    alloc_count_multiplier = 24.0

    phases = (
        PhaseSpec("LagrangeNodal", 0.35, instruction_weight=1.0),
        PhaseSpec("LagrangeElements", 0.45, instruction_weight=1.1),
        PhaseSpec("CalcTimeConstraints", 0.20, instruction_weight=0.7),
    )

    objects = (
        # Cold tables allocated first: FCFS policies burn MCDRAM here.
        ObjectSpec(
            name="material_tables",
            callstack=(("Domain_ctor", 31),),
            size=120 * MIB,
            miss_weight=0.04,
            pattern=AccessPattern("random", 0.6, reref_per_iteration=3.0),
            phases=("LagrangeElements",),
        ),
        ObjectSpec(
            name="elem_connectivity",
            callstack=(("Domain_ctor", 22), ("AllocateElemPersistent", 5)),
            size=120 * MIB,
            miss_weight=0.05,
            pattern=AccessPattern("sequential", 0.25, reref_per_iteration=12.0),
            phases=("LagrangeElements",),
        ),
        # Persistent mesh state.
        ObjectSpec(
            name="node_coords",
            callstack=(("Domain_ctor", 10), ("AllocateNodalPersistent", 4)),
            size=130 * MIB,
            miss_weight=0.12,
            pattern=_PERSIST,
        ),
        ObjectSpec(
            name="node_velocities",
            callstack=(("Domain_ctor", 10), ("AllocateNodalPersistent", 9)),
            size=80 * MIB,
            miss_weight=0.09,
            pattern=_PERSIST,
            phases=("LagrangeNodal", "CalcTimeConstraints"),
        ),
        ObjectSpec(
            name="node_forces",
            callstack=(("Domain_ctor", 10), ("AllocateNodalPersistent", 14)),
            size=80 * MIB,
            miss_weight=0.08,
            pattern=_PERSIST,
            phases=("LagrangeNodal",),
        ),
        ObjectSpec(
            name="elem_volumes",
            callstack=(("Domain_ctor", 22), ("AllocateElemPersistent", 11)),
            size=90 * MIB,
            miss_weight=0.07,
            pattern=_PERSIST,
            phases=("LagrangeElements", "CalcTimeConstraints"),
        ),
        ObjectSpec(
            name="elem_pressure_energy",
            callstack=(("Domain_ctor", 22), ("AllocateElemPersistent", 17)),
            size=110 * MIB,
            miss_weight=0.06,
            pattern=_PERSIST,
            phases=("LagrangeElements",),
        ),
        # Per-phase scratch churn (25-30 MB each, staggered by phase).
        _scratch("grad_scratch_a", "CalcForceForNodes", 8, 30 * MIB, 0.12,
                 "LagrangeNodal"),
        _scratch("grad_scratch_b", "CalcForceForNodes", 13, 40 * MIB, 0.06,
                 "LagrangeNodal"),
        _scratch("accel_scratch", "CalcAccelForNodes", 6, 40 * MIB, 0.06,
                 "LagrangeNodal"),
        _scratch("strain_scratch_a", "CalcKinematics", 9, 45 * MIB, 0.055,
                 "LagrangeElements"),
        _scratch("strain_scratch_b", "CalcKinematics", 14, 45 * MIB, 0.055,
                 "LagrangeElements"),
        _scratch("q_scratch_a", "CalcQForElems", 7, 45 * MIB, 0.055,
                 "LagrangeElements"),
        _scratch("q_scratch_b", "CalcQForElems", 12, 45 * MIB, 0.055,
                 "LagrangeElements"),
        # The 1-2 MiB per-element transients of the constraint phase.
        *[_tiny(i) for i in range(15)],
    )
