"""Simulated application suite.

Synthetic equivalents of the paper's eight evaluation applications
(Table I) plus the STREAM Triad kernel of Figure 1. Each application
is an allocation/access *model*: an inventory of allocation sites
(call-stacks, sizes, lifetimes), per-object access patterns and miss
weights, a phase timeline, and the Table I / Figure 4 calibration
constants. The framework only ever observes allocation events and
sampled addresses, so a faithful inventory reproduces exactly the
interface the real binaries present to it.
"""

from repro.apps.base import (
    AccessPattern,
    AppCalibration,
    AppGeometry,
    GroundTruth,
    ObjectSpec,
    PhaseSpec,
    ProfilingRun,
    ReplayResult,
    SimApplication,
)
from repro.apps.registry import APP_NAMES, get_app, iter_apps

__all__ = [
    "AccessPattern",
    "AppCalibration",
    "AppGeometry",
    "GroundTruth",
    "ObjectSpec",
    "PhaseSpec",
    "ProfilingRun",
    "ReplayResult",
    "SimApplication",
    "APP_NAMES",
    "get_app",
    "iter_apps",
]
