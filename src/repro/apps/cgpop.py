"""CGPOP 1.0 model (Table I, Figures 4m-4o).

Conjugate-gradient miniapp extracted from the LANL Parallel Ocean
Program. Table I: 4,612 LoC Fortran, MPI only, 64 ranks, 180x120 for
200 trials, FOM in trials/s, 29 allocate / 6 deallocate statements
(the paper *converted* the most-observed static arrays to dynamic
allocations so the library could intercept them), 18.17
allocations/process/s, 158 MB/process HWM (10.2 GB total), 8,258
samples/process, 0.88 % monitoring overhead.

Paper results to reproduce: the converted critical arrays fit in the
smallest 32 MB/rank budget already, "so adding more memory does not
provide any benefit" — the FOM columns are flat across budgets and
only ~80 MB/rank is ever used. ``numactl -p 1`` is *marginally*
better than the framework because the remaining static variables
(and the whole 10 GB working set, which fits MCDRAM) ride along.
"""

from __future__ import annotations

from repro.apps.base import (
    AccessPattern,
    AppCalibration,
    AppGeometry,
    ObjectSpec,
    PhaseSpec,
    SimApplication,
)
from repro.units import MIB


class CGPOP(SimApplication):
    name = "cgpop"
    title = "CGPOP 1.0"
    language = "Fortran"
    parallelism = "MPI"
    problem_size = "180x120, 200 trials"
    lines_of_code = 4612
    allocation_statements = "0/0/0/0/0/29/6"
    allocs_per_second_declared = 18.17
    geometry = AppGeometry(ranks=64, threads_per_rank=1)
    calibration = AppCalibration(
        fom_ddr=0.36,
        ddr_time=474.0,
        memory_bound_fraction=0.71,
        fom_name="FOM",
        fom_units="Trials/s",
    )
    n_iterations = 16
    stream_misses = 58_000
    sampling_period = 7  # 58000/7 ~ 8.3k samples (Table I: 8,258)
    stack_miss_fraction = 0.005

    phases = (
        PhaseSpec("pcg_iteration", 0.70, instruction_weight=1.0),
        PhaseSpec("boundary_update", 0.30, instruction_weight=0.7),
    )

    objects = (
        # Converted-to-dynamic critical solver arrays: together they
        # fit in 32 MB/rank, so every budget column looks the same.
        ObjectSpec(
            name="pcg_vectors",
            callstack=(("initialize_solver", 8),),
            size=14 * MIB,
            miss_weight=0.45,
            pattern=AccessPattern("random", 1.0, reref_per_iteration=30.0),
            phases=("pcg_iteration",),
        ),
        ObjectSpec(
            name="matrix_diagonals",
            callstack=(("initialize_solver", 14),),
            size=10 * MIB,
            miss_weight=0.27,
            pattern=AccessPattern("sequential", 1.0, reref_per_iteration=20.0),
            phases=("pcg_iteration",),
        ),
        ObjectSpec(
            name="halo_buffers",
            callstack=(("init_boundary", 11),),
            size=6 * MIB,
            miss_weight=0.14,
            pattern=AccessPattern("sequential", 1.0, reref_per_iteration=20.0),
            phases=("boundary_update",),
        ),
        # Larger dynamic arrays that are touched occasionally; they
        # lift the HWM to ~80 MB/rank when budgets allow.
        ObjectSpec(
            name="ocean_state",
            callstack=(("read_ocean_state", 6),),
            size=50 * MIB,
            miss_weight=0.02,
            pattern=AccessPattern("sequential", 0.5, reref_per_iteration=4.0),
            phases=("boundary_update",),
        ),
        # Statics the conversion left behind: grid masks and metric
        # terms — only numactl can serve these from MCDRAM.
        ObjectSpec(
            name="grid_masks",
            callstack=(),
            size=46 * MIB,
            static=True,
            miss_weight=0.01,
            pattern=AccessPattern("sequential", 0.8, reref_per_iteration=8.0),
        ),
        ObjectSpec(
            name="metric_terms",
            callstack=(),
            size=32 * MIB,
            static=True,
            miss_weight=0.005,
            pattern=AccessPattern("random", 0.8, reref_per_iteration=8.0),
        ),
    )
