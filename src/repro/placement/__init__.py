"""Placement policies: the framework and the paper's four baselines."""

from repro.placement.policies import (
    PlacementOutcome,
    compute_traffic,
    run_ddr_only,
    run_numactl_preferred,
    run_autohbw,
    run_cache_mode,
    run_framework,
)

__all__ = [
    "PlacementOutcome",
    "compute_traffic",
    "run_ddr_only",
    "run_numactl_preferred",
    "run_autohbw",
    "run_cache_mode",
    "run_framework",
]
