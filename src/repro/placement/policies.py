"""Placement policies (Section IV-B's execution conditions).

Five ways to run an application on the hybrid-memory node:

* ``run_ddr_only`` — the reference: everything in DDR;
* ``run_numactl_preferred`` — ``numactl -p 1``: *all* data (static,
  stack and dynamic, in allocation order) goes to MCDRAM first-come
  first-served until it is exhausted, then falls back to DDR;
* ``run_autohbw`` — the memkind ``autohbw`` library: dynamic
  allocations >= 1 MiB forwarded to MCDRAM while it fits;
* ``run_cache_mode`` — MCDRAM as a direct-mapped memory-side cache;
* ``run_framework`` — the paper's contribution: auto-hbwmalloc driven
  by an hmem_advisor report.

Each returns a :class:`PlacementOutcome`: the tier-split traffic, the
allocation overhead, and the observed MCDRAM high-water mark that
Figure 4's middle column plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.advisor.report import PlacementReport
from repro.apps.base import ProfilingRun, ReplayResult, SimApplication
from repro.faults.injector import FaultInjector
from repro.faults.plan import HBW_POLICY_PREFERRED, FaultPlan
from repro.interpose.autohbw import AutoHBW
from repro.interpose.hbwmalloc import AutoHbwMalloc
from repro.machine.cachemode import CacheModeObject, analytic_cache_outcome
from repro.machine.config import MachineConfig
from repro.machine.performance import ExecutionModel, PlacedTraffic, RunCost
from repro.runtime.allocator import Allocation
from repro.runtime.process import SimProcess
from repro.units import MIB


@dataclass(frozen=True, slots=True)
class PlacementOutcome:
    """One scored execution condition."""

    label: str
    cost: RunCost
    traffic: PlacedTraffic
    #: MCDRAM actually used (HWM), real bytes; for numactl/cache the
    #: paper charges the full 16 GiB (Section IV-C).
    hwm_bytes: int
    replay: ReplayResult | None = None

    @property
    def fom(self) -> float:
        return self.cost.fom


def _total_traffic_bytes(app: SimApplication, machine: MachineConfig) -> float:
    """Node-level main-memory traffic implied by the calibration.

    Chosen so that the all-DDR run's memory time equals the calibrated
    memory-bound fraction of the DDR runtime.
    """
    model = ExecutionModel(machine)
    bw_ddr = model.bandwidth.tier_bandwidth(machine.slow_tier, machine.cores)
    cal = app.calibration
    return cal.memory_bound_fraction * cal.ddr_time * bw_ddr


def compute_traffic(
    app: SimApplication,
    machine: MachineConfig,
    profiling: ProfilingRun,
    fast_fraction_by_site: dict[str, float],
    stack_fast: bool = False,
) -> PlacedTraffic:
    """Split the calibrated traffic between MCDRAM and DDR.

    ``fast_fraction_by_site`` gives, per site name, the fraction of
    that object's traffic served from MCDRAM under the placement being
    scored (instances promoted / instances total).

    A run with *zero* observed misses carries no per-site shares to
    split by, so the calibrated traffic is returned as the explicit
    all-slow split — not silently zeroed shares that would credit a
    stack-fast placement with MCDRAM traffic it never measured.
    """
    truth = profiling.ground_truth
    total = _total_traffic_bytes(app, machine)
    if truth.total_misses == 0:
        return PlacedTraffic(
            by_tier={
                machine.fast_tier.name: 0.0,
                machine.slow_tier.name: total,
            }
        )
    fast = 0.0
    for site, count in truth.misses_by_site.items():
        share = count / truth.total_misses
        if site == "<stack>":
            frac = 1.0 if stack_fast else 0.0
        else:
            frac = fast_fraction_by_site.get(site, 0.0)
        fast += total * share * frac
    fast = min(fast, total)  # guard against float accumulation drift
    return PlacedTraffic(
        by_tier={
            machine.fast_tier.name: fast,
            machine.slow_tier.name: total - fast,
        }
    )


def traffic_for_sites(
    app: SimApplication,
    machine: MachineConfig,
    profiling: ProfilingRun,
    fast_sites: frozenset[str] | set[str],
) -> PlacedTraffic:
    """Traffic split when ``fast_sites`` live wholly on the fast tier.

    The cluster scheduler re-advises tenants as budgets shrink and
    grow; every decision lands on a whole-site placement, so this is
    the all-or-nothing specialisation of :func:`compute_traffic`.
    """
    return compute_traffic(
        app, machine, profiling, {site: 1.0 for site in fast_sites}
    )


def _score(
    app: SimApplication,
    machine: MachineConfig,
    traffic: PlacedTraffic,
    alloc_overhead: float,
) -> RunCost:
    model = ExecutionModel(machine)
    cal = app.calibration
    return model.cost(
        traffic,
        compute_time=cal.compute_time,
        work=cal.work,
        cores=machine.cores,
        alloc_overhead=alloc_overhead,
    )


# ---------------------------------------------------------------------------
# fault wiring
# ---------------------------------------------------------------------------


def _replay_faults(
    app: SimApplication, plan: FaultPlan | None
) -> tuple[FaultInjector | None, int | None]:
    """(injector, shrunk per-rank MCDRAM share in real bytes).

    Both are None when the plan does not degrade the re-execution, so
    clean runs take exactly the pre-fault code path.
    """
    if plan is None or not plan.degrades_replay:
        return None, None
    capacity = None
    if plan.mcdram_capacity_factor < 1.0:
        capacity = plan.shrunk_capacity(app.mcdram_share_real)
    return FaultInjector(plan), capacity


def _hbw_policy(plan: FaultPlan | None) -> str:
    return plan.hbw_policy if plan is not None else HBW_POLICY_PREFERRED


def _shrunk_share(app: SimApplication, plan: FaultPlan | None) -> int:
    share = app.mcdram_share_real
    if plan is not None:
        share = plan.shrunk_capacity(share)
    return share


# ---------------------------------------------------------------------------
# policies
# ---------------------------------------------------------------------------


def run_ddr_only(
    app: SimApplication,
    machine: MachineConfig,
    profiling: ProfilingRun,
    plan: FaultPlan | None = None,
) -> PlacementOutcome:
    """Everything in DDR (Figure 4's green reference line).

    DDR-only runs never touch the fast tier, so every fault knob is a
    no-op here — the reference stays a reference under degradation.
    """
    traffic = compute_traffic(app, machine, profiling, {})
    return PlacementOutcome(
        label="DDR",
        cost=_score(app, machine, traffic, 0.0),
        traffic=traffic,
        hwm_bytes=0,
    )


#: Real bytes of stack reserved per rank under numactl (the preferred
#: policy places the stack on MCDRAM at process start).
_NUMACTL_STACK_RESERVE = 8 * MIB


class NumactlFCFS:
    """Page-granular FCFS placement tracker (``numactl -p 1`` model).

    The preferred-node policy places each newly touched *page* on
    MCDRAM while any remains, so a large object can straddle both
    tiers. All allocations are served by the posix allocator (numactl
    is not an allocator); the hook only tracks which fraction of each
    allocation's pages landed on MCDRAM.
    """

    def __init__(self, process: SimProcess, capacity_scaled: int) -> None:
        self.process = process
        self.remaining = capacity_scaled
        self.capacity = capacity_scaled
        self.hwm_used = 0
        self.promoted_fractions_by_key: dict[tuple, list[float]] = {}
        self._promoted_bytes: dict[int, int] = {}
        self.overhead_seconds = 0.0

    def malloc(self, size: int, callstack) -> "Allocation":
        alloc = self.process.posix.malloc(size, callstack)
        take = min(self.remaining, size)
        self.remaining -= take
        self.hwm_used = max(self.hwm_used, self.capacity - self.remaining)
        key = self.process.symbols.translate(callstack).key
        self.promoted_fractions_by_key.setdefault(key, []).append(
            take / size
        )
        self._promoted_bytes[alloc.address] = take
        return alloc

    def free(self, address: int) -> "Allocation":
        self.remaining += self._promoted_bytes.pop(address, 0)
        return self.process.posix.free(address)

    def realloc(self, address: int, new_size: int, callstack) -> "Allocation":
        self.free(address)
        return self.malloc(new_size, callstack)

    @property
    def hbw_hwm_bytes(self) -> int:
        return self.hwm_used


def run_numactl_preferred(
    app: SimApplication,
    machine: MachineConfig,
    profiling: ProfilingRun,
    plan: FaultPlan | None = None,
) -> PlacementOutcome:
    """``numactl -p 1``: FCFS into MCDRAM, DDR fall-back.

    Statics and the stack are mapped first (program load), then
    dynamic allocations in program order take MCDRAM page by page
    while the per-rank share lasts. A fault plan's capacity shrink
    reduces the share FCFS consumes; the kernel policy is preferred by
    construction, so there is nothing to bind or fail here.
    """
    share = _shrunk_share(app, plan)
    statics_bytes = sum(o.size for o in app.objects if o.static)
    reserved = statics_bytes + _NUMACTL_STACK_RESERVE
    statics_fit = reserved <= share
    remaining_real = max(0, share - reserved) if statics_fit else share
    remaining_scaled = max(1, int(remaining_real * app.scale))

    replay = app.replay_with_hook(
        lambda process: NumactlFCFS(process, remaining_scaled)
    )
    fractions = {
        o.name: (
            1.0
            if o.static and statics_fit
            else replay.promoted_fraction(o.name, "memkind-hbw")
        )
        for o in app.objects
    }
    traffic = compute_traffic(
        app, machine, profiling, fractions, stack_fast=statics_fit
    )
    # numactl costs nothing per allocation (kernel page placement).
    return PlacementOutcome(
        label="MCDRAM*",
        cost=_score(app, machine, traffic, 0.0),
        traffic=traffic,
        hwm_bytes=machine.fast_tier.capacity,
        replay=replay,
    )


def run_autohbw(
    app: SimApplication,
    machine: MachineConfig,
    profiling: ProfilingRun,
    min_size: int = 1 * MIB,
    plan: FaultPlan | None = None,
) -> PlacementOutcome:
    """The autohbw library with the paper's 1 MiB threshold."""
    min_scaled = max(1, int(min_size * app.scale))
    injector, capacity_real = _replay_faults(app, plan)

    def factory(process: SimProcess) -> AutoHBW:
        if injector is not None:
            injector.arm_memkind(process.memkind, scope=f"{app.name}:autohbw")
        return AutoHBW(
            process, min_size=min_scaled, policy=_hbw_policy(plan)
        )

    replay = app.replay_with_hook(factory, hbw_capacity_real=capacity_real)
    fractions = {
        o.name: replay.promoted_fraction(o.name, "memkind-hbw")
        for o in app.objects
        if not o.static
    }
    traffic = compute_traffic(app, machine, profiling, fractions)
    return PlacementOutcome(
        label="autohbw/1m",
        cost=_score(app, machine, traffic, replay.alloc_overhead_seconds),
        traffic=traffic,
        hwm_bytes=replay.hbw_hwm_bytes,
        replay=replay,
    )


#: Real bytes of stack data hot under cache mode, and its re-reference
#: rate (the stack is tiny and constantly re-touched, so it is nearly
#: always resident).
_STACK_HOT_BYTES = 4 * MIB
_STACK_REREF = 64.0


def run_cache_mode(
    app: SimApplication,
    machine: MachineConfig,
    profiling: ProfilingRun,
    plan: FaultPlan | None = None,
) -> PlacementOutcome:
    """MCDRAM configured as a direct-mapped memory-side cache.

    The hit ratio comes from the Che-style analytic model
    (:func:`repro.machine.cachemode.analytic_cache_outcome`) over the
    application's per-object hot footprints, measured miss shares and
    re-reference rates. (The direct-mapped *simulator* is still used
    where a dense stream exists — the STREAM kernel of Figure 1 — but
    the sparse sampled streams of the Figure 4 workloads would distort
    conflict behaviour, so the closed-form model is used here; see
    DESIGN.md.)
    """
    truth = profiling.ground_truth
    share = _shrunk_share(app, plan)
    cache_objects = [
        CacheModeObject(
            hot_bytes=o.size * o.pattern.hot_fraction * o.count,
            miss_share=truth.miss_share(o.name),
            reref_per_iteration=o.pattern.reref_per_iteration,
        )
        for o in app.objects
        if o.miss_weight > 0
    ]
    cache_objects.append(
        CacheModeObject(
            hot_bytes=_STACK_HOT_BYTES,
            miss_share=truth.miss_share("<stack>"),
            reref_per_iteration=_STACK_REREF,
        )
    )
    outcome = analytic_cache_outcome(cache_objects, capacity=share)
    total = _total_traffic_bytes(app, machine)
    traffic = PlacedTraffic(
        cached_bytes=total,
        cache_hit_ratio=outcome.hit_ratio,
        cache_fill_amplification=outcome.fill_amplification,
    )
    return PlacementOutcome(
        label="Cache",
        cost=_score(app, machine, traffic, 0.0),
        traffic=traffic,
        hwm_bytes=machine.fast_tier.capacity,
    )


def run_framework(
    app: SimApplication,
    machine: MachineConfig,
    profiling: ProfilingRun,
    report: PlacementReport,
    budget_real: int,
    label: str | None = None,
    plan: FaultPlan | None = None,
) -> PlacementOutcome:
    """The paper's framework: auto-hbwmalloc honoring ``report``.

    ``budget_real`` is the MCDRAM budget per rank in real bytes —
    enforced at run time by the library regardless of what budget the
    advisor planned with (which enables the Section IV-C "virtual
    budget" experiment). A fault plan degrades only the *physical*
    layer underneath: the advisor budget is untouched, so a shrunk
    tier is exactly the production surprise the hbwmalloc policy has
    to absorb.
    """
    budget_scaled = app.scaled(budget_real)
    tier = machine.fast_tier.name
    injector, capacity_real = _replay_faults(app, plan)

    def factory(process: SimProcess) -> AutoHbwMalloc:
        if injector is not None:
            injector.arm_memkind(
                process.memkind, scope=f"{app.name}:framework"
            )
        return AutoHbwMalloc(
            process,
            report,
            tier=tier,
            budget=budget_scaled,
            policy=_hbw_policy(plan),
            fault_injector=injector,
        )

    replay = app.replay_with_hook(factory, hbw_capacity_real=capacity_real)
    fractions = {
        o.name: replay.promoted_fraction(o.name, "memkind-hbw")
        for o in app.objects
        if not o.static
    }
    traffic = compute_traffic(app, machine, profiling, fractions)
    return PlacementOutcome(
        label=label or report.strategy,
        cost=_score(app, machine, traffic, replay.alloc_overhead_seconds),
        traffic=traffic,
        hwm_bytes=replay.hbw_hwm_bytes,
        replay=replay,
    )
