"""Evaluation metrics, including the paper's novel ΔFOM/MByte.

Equation 1: ``ΔFOM/mbyte_x(y) = (FOM_x(y) - FOM_ddr(y)) / MEM_x`` —
"the performance increase achieved when using a given amount of fast
memory", used to find the sweet-spot MCDRAM size per application.
"""

from __future__ import annotations

from repro.units import MIB


def delta_fom_per_mbyte(
    fom_x: float, fom_ddr: float, mem_bytes: float
) -> float:
    """Equation 1 of the paper.

    Parameters
    ----------
    fom_x:
        FOM of experiment ``x``.
    fom_ddr:
        FOM of the all-DDR reference run.
    mem_bytes:
        MCDRAM used by experiment ``x``; the paper charges the full
        16 GiB for the numactl and cache-mode conditions since their
        exact usage is unknown.
    """
    if mem_bytes <= 0:
        raise ValueError(f"memory used must be positive, got {mem_bytes}")
    return (fom_x - fom_ddr) / (mem_bytes / MIB)


def speedup(fom_x: float, fom_ref: float) -> float:
    """FOM ratio (>1 means ``x`` is faster)."""
    if fom_ref <= 0:
        raise ValueError(f"reference FOM must be positive, got {fom_ref}")
    return fom_x / fom_ref


def percent_gain(fom_x: float, fom_ref: float) -> float:
    """Percentage improvement of ``x`` over the reference."""
    return (speedup(fom_x, fom_ref) - 1.0) * 100.0
