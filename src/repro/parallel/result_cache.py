"""Disk-backed, content-addressed cache of sweep cell results.

A Figure-4 sweep re-run with unchanged inputs repeats every profiling
and replay stage only to land on the same :class:`ResultRow`s. The
cache keys each cell result by a SHA-256 content hash over everything
that determines it — the application model (full inventory, phases,
calibration), the machine configuration, the grid cell, the seed and
the code-relevant versions — so a warm re-run returns rows without
executing a single pipeline stage, while *any* change to an input
(one object's miss weight, a tier's bandwidth, the package version)
misses cleanly instead of serving stale data.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING

from repro.apps.base import SimApplication
from repro.errors import ConfigError
from repro.ioutil import atomic_write_text
from repro.machine.config import MachineConfig
from repro.pipeline.experiment import GridCell
from repro.pipeline.results import ResultRow

if TYPE_CHECKING:
    from repro.faults.plan import FaultPlan

#: Bump when the cached payload layout or the scoring semantics of a
#: row change incompatibly; invalidates every prior entry.
CACHE_SCHEMA_VERSION = 1


def app_fingerprint(app: SimApplication) -> dict:
    """Everything about an application model that shapes its results."""
    return {
        "name": app.name,
        "geometry": asdict(app.geometry),
        "calibration": asdict(app.calibration),
        "scale": app.scale,
        "n_iterations": app.n_iterations,
        "stream_misses": app.stream_misses,
        "sampling_period": app.sampling_period,
        "stack_miss_fraction": app.stack_miss_fraction,
        "stack_phases": list(app.stack_phases),
        "alloc_count_multiplier": app.alloc_count_multiplier,
        "init_fraction": app.init_fraction,
        "phases": [asdict(p) for p in app.phases],
        "objects": [asdict(o) for o in app.objects],
    }


def cell_fingerprint(cell: GridCell) -> dict:
    return {
        "kind": cell.kind,
        "label": cell.label,
        "budget_bytes": cell.budget_bytes,
        "advisor_budget_bytes": cell.advisor_budget_bytes,
    }


def content_hash(payload: dict) -> str:
    """SHA-256 over the canonical JSON encoding of ``payload``."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def cell_cache_key(
    app: SimApplication,
    machine: MachineConfig,
    cell: GridCell,
    seed: int,
    fault_plan: "FaultPlan | None" = None,
) -> str:
    """The content-addressed identity of one sweep cell.

    A fault plan changes what a cell computes, so it is part of the
    identity — but only when present, which keeps every pre-existing
    clean-run cache entry valid.
    """
    from repro import __version__

    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "version": __version__,
        "app": app_fingerprint(app),
        "machine": machine.to_dict(),
        "cell": cell_fingerprint(cell),
        "seed": seed,
    }
    if fault_plan is not None:
        payload["fault_plan"] = fault_plan.to_dict()
    return content_hash(payload)


class ResultCache:
    """One-file-per-entry store under ``root`` (sharded by prefix).

    Entries are tiny JSON documents; sharding into 256 prefix
    directories keeps any single directory listing fast even for
    sweeps with many thousands of cells.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as exc:
            raise ConfigError(
                f"cache dir {self.root} is not a directory"
            ) from exc
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> ResultRow | None:
        """The cached row for ``key``, or None.

        A present-but-unparseable entry (truncated write from a killed
        process, bit rot, foreign junk) is *quarantined*: renamed to
        ``<key>.corrupt`` beside the live entries and reported as a
        miss, so the cell re-executes and its fresh row can be stored
        under the original name — one bad entry never wedges the cell
        that owns it, and the evidence is preserved for inspection.
        """
        path = self._path(key)
        try:
            raw = path.read_text()
        except OSError:
            # Absent (or unreadable) is an ordinary miss.
            self.misses += 1
            return None
        try:
            data = json.loads(raw)
            row = ResultRow.from_dict(data["row"])
        except (ValueError, KeyError, TypeError):
            try:
                path.replace(path.with_suffix(".corrupt"))
            except OSError:
                pass
            self.quarantined += 1
            self.misses += 1
            return None
        self.hits += 1
        return row

    def put(self, key: str, row: ResultRow) -> None:
        """Store atomically and durably (write-fsync-rename via
        :func:`repro.ioutil.atomic_write_text`) so a crashed or
        concurrent writer never leaves a half-written entry."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {"schema": CACHE_SCHEMA_VERSION, "row": row.to_dict()},
            indent=2,
        )
        atomic_write_text(path, payload)
        self.stores += 1

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
