"""Parallel Figure-4 sweep executor with caching, durability and
supervision.

The evaluation grid (apps x budgets x strategies x baselines) is
embarrassingly parallel: cells only share the placement-invariant
profiling run of their application, and that run is deterministic in
the seed. The executor therefore fans :class:`GridCell` work across
worker processes where each worker keeps one framework (and hence one
profiling run) per application, while the parent

* answers cells from the content-addressed :class:`ResultCache`
  *before* dispatching them, so a warm re-run executes zero pipeline
  stages (provable via :class:`StageMetrics` counters);
* optionally journals every intent and settled outcome to a
  crash-consistent write-ahead :class:`SweepJournal`, so a sweep whose
  *parent* is SIGKILLed can be relaunched with ``resume=True`` and
  replay its settled cells, re-executing only the unfinished ones;
* isolates worker faults — a failing cell is retried (configurable
  count, decorrelated-jitter backoff) keyed off the structured error
  taxonomy (:mod:`repro.errors`): transient and deterministic failures
  retry, poisoned-input failures fail immediately;
* with a ``cell_deadline`` set, runs cells under the
  :class:`WorkerSupervisor` — heartbeat-tracked worker processes whose
  hung or dead members are killed and replaced, their cells requeued
  within a bounded budget; repeated deterministic failures trip a
  per-application :class:`CircuitBreaker` that refuses the app's
  remaining cells;
* enforces an optional error budget: once the budget of failed cells
  is spent, remaining cells are recorded as skipped (fail-fast);
* merges every per-cell :class:`StageMetrics` record into one
  sweep-level roll-up;
* with ``shared_plane=True`` (and ``jobs > 1``), profiles each
  application once in the parent and publishes the columnar trace +
  ground truth on a :class:`~repro.trace.shared.SharedTracePlane`;
  workers attach zero-copy read-only views and reconstruct their
  frameworks from the shared profile instead of re-profiling. A
  worker that finds the plane torn or missing falls back to private
  materialisation (counted, never a failed cell);
* batches several same-application cells per pool submission
  (``batch_size``, auto-sized from grid and jobs) so IPC and
  result-collection overhead amortise — journal intents, cache
  answers, retries, deadlines and circuit breakers all stay per-cell.

``jobs=1`` runs the same scheduler in-process (no pool), so the
serial and parallel paths share every line of cell-execution code.
A :class:`~repro.faults.plan.FaultPlan` attached to the config is
reconstructed identically inside every worker (it travels by value),
so a faulted sweep is bit-reproducible across serial and parallel
execution — and across the shared-plane path, because the parent
publishes the trace *after* applying the plan's profile degradation.
"""

from __future__ import annotations

import hashlib
import math
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path

from repro.apps.base import SimApplication
from repro.errors import (
    CATEGORY_POISONED,
    CATEGORY_TRANSIENT,
    ConfigError,
    OutOfMemoryError,
    PlaneError,
    classify_error,
)
from repro.faults.injector import FATE_HANG, FATE_KILL, FaultInjector
from repro.faults.plan import FaultPlan
from repro.machine.config import MachineConfig, xeon_phi_7250
from repro.parallel.journal import (
    JOURNAL_SCHEMA_VERSION,
    SweepJournal,
)
from repro.parallel.result_cache import (
    ResultCache,
    app_fingerprint,
    cell_cache_key,
    content_hash,
)
from repro.parallel.supervisor import (
    CellAborted,
    CellRequeued,
    CellResult,
    CircuitBreaker,
    WorkerSupervisor,
)
from repro.pipeline.experiment import (
    ExperimentGrid,
    GridCell,
    collect_result,
    enumerate_cells,
    run_cell,
)
from repro.pipeline.framework import HybridMemoryFramework
from repro.pipeline.metrics import StageMetrics
from repro.pipeline.results import ExperimentResult, ResultRow
from repro.trace.columnar import ColumnarTrace
from repro.parallel.watchdog import start_orphan_watchdog
from repro.trace.shared import (
    BACKENDS,
    PlaneHandle,
    SharedProfile,
    SharedTracePlane,
    attach_plane,
)
from repro.trace.tracer import TracerConfig

#: Error text of cells the error budget prevented from running.
SKIPPED_ERROR = "skipped: error budget exhausted"

#: Error-text prefix of cells an open circuit prevented from running.
CIRCUIT_ERROR_PREFIX = "skipped: circuit open"


@dataclass
class SweepConfig:
    """Execution knobs of one sweep."""

    #: Worker processes; 1 executes in-process (no pool).
    jobs: int = 1
    #: Result-cache directory; None disables caching.
    cache_dir: str | Path | None = None
    #: Base seed; each application's framework profiles with it, so
    #: sweep rows match ``run_figure4_experiment(app, seed=seed)``.
    seed: int = 0
    #: Re-executions granted to a faulting cell before it is recorded
    #: as an error outcome (poisoned-input failures never retry).
    retries: int = 1
    #: Base delay before a retry; attempt ``n`` waits a decorrelated-
    #: jitter delay seeded per cell (0 disables backoff).
    backoff_seconds: float = 0.0
    #: Wall-clock limit per cell attempt; an attempt exceeding it is
    #: treated as a failure (and retried). None: no limit.
    timeout_seconds: float | None = None
    #: After this many cells have *finally* failed, stop executing and
    #: record every remaining cell as skipped. None: run everything.
    error_budget: int | None = None
    #: Degradation schedule applied inside every cell. Part of the
    #: cache identity, so faulted and clean results never mix.
    fault_plan: FaultPlan | None = None
    #: Directory of the crash-consistent sweep journal; None disables
    #: journaling (and hence resumability).
    journal_dir: str | Path | None = None
    #: Replay settled cells from an existing journal in
    #: ``journal_dir`` and execute only the unfinished remainder.
    resume: bool = False
    #: Wall-clock deadline per dispatched cell. With ``jobs > 1`` this
    #: engages the worker supervisor: a worker whose cell overruns the
    #: deadline is killed and the cell requeued. Serially it is
    #: enforced post-hoc (like ``timeout_seconds``).
    cell_deadline: float | None = None
    #: Requeues granted to a cell whose worker died or was killed
    #: (out-of-band failures — distinct from ``retries``, which
    #: governs in-band failures reported by a live worker).
    requeue_budget: int = 2
    #: Deterministic-category final failures an application may
    #: accumulate before its circuit opens and its remaining cells are
    #: refused. None: breaker disabled.
    circuit_threshold: int | None = None
    #: Publish each application's profiling products once per host on
    #: a shared trace plane; workers (``jobs > 1`` only) reconstruct
    #: their frameworks from zero-copy views instead of re-profiling.
    shared_plane: bool = False
    #: Plane transport: ``"shm"`` (POSIX shared memory) or ``"mmap"``
    #: (uncompressed on-disk columnar container; the page cache shares
    #: one physical copy).
    plane_backend: str = "shm"
    #: Cells per pool submission. ``None`` auto-sizes from grid and
    #: jobs — and pins the batch to 1 whenever ``timeout_seconds`` is
    #: set, so the per-attempt timeout keeps its per-cell meaning.
    batch_size: int | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigError("sweep needs at least one job")
        if self.retries < 0:
            raise ConfigError("retries must be >= 0")
        if self.backoff_seconds < 0:
            raise ConfigError("backoff_seconds must be >= 0")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ConfigError("timeout_seconds must be positive")
        if self.error_budget is not None and self.error_budget < 1:
            raise ConfigError("error_budget must be >= 1")
        if self.cell_deadline is not None and self.cell_deadline <= 0:
            raise ConfigError("cell_deadline must be positive")
        if self.requeue_budget < 0:
            raise ConfigError("requeue_budget must be >= 0")
        if self.circuit_threshold is not None and self.circuit_threshold < 1:
            raise ConfigError("circuit_threshold must be >= 1")
        if self.resume and self.journal_dir is None:
            raise ConfigError("resume requires a journal_dir")
        if self.plane_backend not in BACKENDS:
            raise ConfigError(
                f"unknown plane backend {self.plane_backend!r}; "
                f"have {BACKENDS}"
            )
        if self.batch_size is not None and self.batch_size < 1:
            raise ConfigError("batch_size must be >= 1")


@dataclass
class CellOutcome:
    """One cell's result: a row, a captured failure, or a skip."""

    application: str
    cell: GridCell
    row: ResultRow | None = None
    #: Formatted traceback of the last attempt, if every attempt failed.
    error: str | None = None
    #: Failure-taxonomy category of the last attempt (None on success).
    category: str | None = None
    attempts: int = 0
    cached: bool = False
    #: True when this outcome was replayed from a sweep journal.
    resumed: bool = False
    #: True when the error budget or an open circuit prevented this
    #: cell from running.
    skipped: bool = False
    metrics: StageMetrics = field(default_factory=StageMetrics)
    #: Position in the (app, cell) enumeration; outcomes are sorted by
    #: it so parallel completion order never leaks into the results.
    order: tuple[int, int] = (0, 0)

    @property
    def ok(self) -> bool:
        return self.row is not None


@dataclass
class SweepResult:
    """Everything one sweep produced."""

    outcomes: list[CellOutcome] = field(default_factory=list)
    #: Sweep-level roll-up of every cell's stage record plus the
    #: bookkeeping counters (cache_hit/cache_miss/error/retry/
    #: timeout/skipped/journal_replay/requeue/deadline_kill/
    #: worker_crash/circuit_open and the fault-degradation counters).
    metrics: StageMetrics = field(default_factory=StageMetrics)

    @property
    def failures(self) -> list[CellOutcome]:
        """Cells that ran and failed (skipped cells excluded)."""
        return [o for o in self.outcomes if not o.ok and not o.skipped]

    @property
    def skipped(self) -> list[CellOutcome]:
        return [o for o in self.outcomes if o.skipped]

    @property
    def resumed(self) -> list[CellOutcome]:
        """Cells answered by journal replay instead of execution."""
        return [o for o in self.outcomes if o.resumed]

    def rows(self, application: str) -> dict[GridCell, ResultRow]:
        return {
            o.cell: o.row
            for o in self.outcomes
            if o.application == application and o.ok
        }

    def experiment(self, app: SimApplication) -> ExperimentResult:
        """Assemble one application's successful rows."""
        return collect_result(app, self.rows(app.name))


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

#: Per-worker-process framework memo: (app name, machine name, seed,
#: fault plan, plane key) -> HybridMemoryFramework. Raw addresses and
#: profiling runs are only meaningful within one process (ASLR), so
#: the memo — like the paper's per-process decision cache — never
#: crosses the pool. The plan is part of the key because it shapes the
#: memoised (possibly degraded) profiling run.
_WORKER_FRAMEWORKS: dict[tuple, HybridMemoryFramework] = {}

#: Entries the framework memo may hold before the least-recently-used
#: one is evicted. Long sweeps over many apps × plans would otherwise
#: pin every profiling run they ever materialised.
_WORKER_MEMO_CAP = 4

#: Per-worker-process cache of attached planes: plane key ->
#: SharedProfile. Attachments are views, not copies, so this stays
#: tiny and is deliberately *not* evicted with the framework memo —
#: a re-created framework reattaches for free.
_WORKER_PLANES: dict[str, SharedProfile] = {}


def _memo_get(memo: dict, key: tuple) -> HybridMemoryFramework | None:
    """LRU lookup: a hit is moved to the most-recent end."""
    framework = memo.pop(key, None)
    if framework is not None:
        memo[key] = framework
    return framework


def _memo_put(memo: dict, key: tuple, framework: HybridMemoryFramework) -> int:
    """Insert, evicting least-recently-used entries beyond the cap.

    Returns the number of evictions (dict order is insertion order,
    and :func:`_memo_get` reinserts on hit, so the first key is always
    the least recently used)."""
    memo[key] = framework
    evictions = 0
    while len(memo) > _WORKER_MEMO_CAP:
        memo.pop(next(iter(memo)))
        evictions += 1
    return evictions


def _execute_cell(
    app: SimApplication,
    machine: MachineConfig,
    cell: GridCell,
    seed: int,
    frameworks: dict | None = None,
    plan: FaultPlan | None = None,
    attempt: int = 1,
    plane: PlaneHandle | None = None,
) -> tuple[ResultRow | None, str | None, str | None, dict]:
    """Run one cell; never raises (the pool must stay healthy).

    Returns ``(row, traceback_text, category, metrics_dict)`` — the
    category is the failure-taxonomy bucket of the captured exception
    (None on success) and the metrics cover only the stages this call
    actually executed, so the parent can sum them into a truthful
    sweep total. ``frameworks`` is the framework memo to use; pool
    workers default to the process-global one, the in-process serial
    path passes a per-sweep dict.

    With a ``plane`` handle, a missing framework is reconstructed
    around the host's shared trace instead of re-profiling
    (``plane_attach`` counted); a torn or vanished plane degrades to
    private materialisation (``plane_fallback`` counted) — never to a
    failed cell.
    """
    memo = _WORKER_FRAMEWORKS if frameworks is None else frameworks
    key = (
        app.name,
        machine.name,
        seed,
        plan,
        plane.key if plane is not None else None,
    )
    framework = _memo_get(memo, key)
    plane_counter = None
    evictions = 0
    if framework is None:
        if plane is not None:
            shared = _WORKER_PLANES.get(plane.key)
            if shared is None:
                try:
                    shared = attach_plane(plane)
                    _WORKER_PLANES[plane.key] = shared
                except PlaneError:
                    plane_counter = "plane_fallback"
            if shared is not None:
                framework = HybridMemoryFramework.from_shared_profile(
                    app, machine, shared, seed=seed, fault_plan=plan
                )
                plane_counter = "plane_attach"
        if framework is None:
            framework = HybridMemoryFramework(
                app, machine, seed=seed, fault_plan=plan
            )
        evictions = _memo_put(memo, key, framework)
    framework.metrics = StageMetrics()
    if plane_counter is not None:
        framework.metrics.bump(plane_counter)
    if evictions:
        framework.metrics.bump("framework_evicted", evictions)
    try:
        if plan is not None:
            injector = FaultInjector(plan)
            fate = injector.cell_fate(app.name, cell.key, attempt)
            if fate == FATE_HANG:
                framework.metrics.bump("cell_hung")
                time.sleep(plan.cell_hang_seconds)
            elif fate == FATE_KILL:
                framework.metrics.bump("cell_killed")
                raise injector.kill_error(app.name, cell.key, attempt)
        row = run_cell(framework, cell)
        return row, None, None, framework.metrics.to_dict()
    except OutOfMemoryError as exc:
        framework.metrics.bump("oom")
        return (
            None,
            traceback.format_exc(),
            classify_error(exc),
            framework.metrics.to_dict(),
        )
    except (KeyboardInterrupt, SystemExit):
        # Control-flow signals, not cell failures: swallowing them
        # would turn a Ctrl-C (or an exit()-ing workload) into a
        # "transient" error that gets retried. Let them unwind.
        raise
    except BaseException as exc:
        return (
            None,
            traceback.format_exc(),
            classify_error(exc),
            framework.metrics.to_dict(),
        )


def _execute_batch(
    app: SimApplication,
    machine: MachineConfig,
    cells: list[GridCell],
    seed: int,
    plan: FaultPlan | None = None,
    attempts: list[int] | None = None,
    plane: PlaneHandle | None = None,
) -> list[tuple[ResultRow | None, str | None, str | None, dict]]:
    """Run a batch of same-application cells in one worker call.

    Batching amortises pool IPC — one submit and one result per batch
    instead of per cell — without changing per-cell semantics: every
    cell still runs through :func:`_execute_cell` and yields its own
    ``(row, error, category, metrics)`` tuple, so the parent settles,
    caches, journals and retries each cell individually.
    """
    if attempts is None:
        attempts = [1] * len(cells)
    return [
        _execute_cell(
            app, machine, cell, seed, None, plan, attempt, plane=plane
        )
        for cell, attempt in zip(cells, attempts)
    ]


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


def _jitter_unit(seed: int, *tokens: object) -> float:
    """Deterministic uniform draw in [0, 1) keyed on ``tokens``."""
    digest = hashlib.sha256(repr((seed, tokens)).encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class SweepExecutor:
    """Schedule, journal, cache, retry, supervise and aggregate a
    grid of sweep cells."""

    def __init__(
        self,
        machine: MachineConfig | None = None,
        config: SweepConfig | None = None,
    ) -> None:
        self.machine = machine or xeon_phi_7250()
        self.config = config or SweepConfig()
        self.cache = (
            ResultCache(self.config.cache_dir)
            if self.config.cache_dir is not None
            else None
        )
        self._journal: SweepJournal | None = None
        self._breaker = CircuitBreaker(self.config.circuit_threshold)

    # -- public entry ---------------------------------------------------

    def run(
        self,
        apps: list[SimApplication],
        grid: ExperimentGrid | None = None,
    ) -> SweepResult:
        """Sweep every cell of every application."""
        config = self.config
        result = SweepResult()
        self._breaker = CircuitBreaker(config.circuit_threshold)
        need_key = self.cache is not None or config.journal_dir is not None

        entries: list[tuple[SimApplication, CellOutcome, str | None]] = []
        for app_index, app in enumerate(apps):
            for cell_index, cell in enumerate(enumerate_cells(app, grid)):
                outcome = CellOutcome(
                    application=app.name,
                    cell=cell,
                    order=(app_index, cell_index),
                )
                key = (
                    cell_cache_key(
                        app,
                        self.machine,
                        cell,
                        config.seed,
                        fault_plan=config.fault_plan,
                    )
                    if need_key
                    else None
                )
                entries.append((app, outcome, key))

        replayed: dict[str, dict] = {}
        if config.journal_dir is not None:
            manifest = self._manifest([key for _, _, key in entries])
            if config.resume:
                self._journal, replay = SweepJournal.resume(
                    config.journal_dir, manifest
                )
                replayed = replay.settled
            else:
                self._journal = SweepJournal.create(
                    config.journal_dir, manifest
                )

        try:
            pending: list[
                tuple[SimApplication, CellOutcome, str | None]
            ] = []
            for app, outcome, key in entries:
                payload = replayed.get(key)
                if payload is not None:
                    self._restore_outcome(payload, outcome)
                    result.metrics.bump("journal_replay")
                    result.outcomes.append(outcome)
                    continue
                if self.cache is not None:
                    row = self.cache.get(key)
                    if row is not None:
                        result.metrics.bump("cache_hit")
                        outcome.row, outcome.cached = row, True
                        self._journal_outcome(key, outcome)
                        result.outcomes.append(outcome)
                        continue
                    result.metrics.bump("cache_miss")
                pending.append((app, outcome, key))

            if self._journal is not None and pending:
                self._journal.append_intents(
                    [
                        {
                            "key": key,
                            "application": app.name,
                            "cell": outcome.cell.to_dict(),
                        }
                        for app, outcome, key in pending
                    ]
                )

            if pending:
                if config.jobs == 1:
                    self._run_serial(pending, result)
                else:
                    plane: SharedTracePlane | None = None
                    planes: dict[str, PlaneHandle] = {}
                    if config.shared_plane:
                        plane = SharedTracePlane(
                            backend=config.plane_backend
                        )
                        planes = self._publish_planes(
                            plane, pending, result
                        )
                    try:
                        if config.cell_deadline is not None:
                            self._run_supervised(pending, result, planes)
                        else:
                            self._run_pool(pending, result, planes)
                    finally:
                        if plane is not None:
                            plane.close()

            result.outcomes.sort(key=lambda o: o.order)
            for outcome in result.outcomes:
                result.metrics.merge(outcome.metrics)
            if self._journal is not None:
                ok = sum(1 for o in result.outcomes if o.ok)
                self._journal.record_end(
                    {
                        "cells": len(result.outcomes),
                        "ok": ok,
                        "failed": len(result.outcomes) - ok,
                    }
                )
        finally:
            if self._journal is not None:
                self._journal.close()
                self._journal = None
        return result

    # -- journal plumbing ----------------------------------------------

    def _manifest(self, keys: list[str | None]) -> dict:
        """The sweep's durable identity (pins every input via the
        per-cell content-hash keys)."""
        config = self.config
        return {
            "schema": JOURNAL_SCHEMA_VERSION,
            "seed": config.seed,
            "machine": self.machine.name,
            "fault_plan": (
                config.fault_plan.to_dict()
                if config.fault_plan is not None
                else None
            ),
            "cells": len(keys),
            "sweep_key": content_hash(
                {"cells": sorted(k for k in keys if k is not None)}
            ),
        }

    def _journal_outcome(self, key: str | None, outcome: CellOutcome) -> None:
        if self._journal is None:
            return
        self._journal.record_outcome(
            {
                "key": key,
                "application": outcome.application,
                "cell": outcome.cell.to_dict(),
                "row": outcome.row.to_dict() if outcome.row else None,
                "error": outcome.error,
                "category": outcome.category,
                "attempts": outcome.attempts,
                "cached": outcome.cached,
                "skipped": outcome.skipped,
                "metrics": outcome.metrics.to_dict(),
            }
        )

    @staticmethod
    def _restore_outcome(payload: dict, outcome: CellOutcome) -> None:
        """Rehydrate a journaled outcome onto a fresh CellOutcome."""
        row = payload.get("row")
        outcome.row = ResultRow.from_dict(row) if row else None
        outcome.error = payload.get("error")
        outcome.category = payload.get("category")
        outcome.attempts = int(payload.get("attempts", 0))
        outcome.cached = bool(payload.get("cached", False))
        outcome.skipped = bool(payload.get("skipped", False))
        # The journaled metrics describe work the *previous* run did;
        # like a cache hit, a replayed cell executed nothing in this
        # run, so its metrics stay empty (history lives in the file).
        outcome.resumed = True

    # -- execution strategies ------------------------------------------

    def _backoff(self, attempt_done: int, token: tuple = ()) -> float:
        """Delay before the attempt after ``attempt_done`` failed.

        Decorrelated jitter (``sleep_n = U(base, 3 * sleep_{n-1})``,
        capped) seeded per cell, so cells requeued together after a
        worker death spread out instead of stampeding the pool in
        lockstep. Deterministic in the sweep seed and cell identity.
        """
        base = self.config.backoff_seconds
        if base <= 0:
            return 0.0
        cap = base * 32
        sleep = base
        for i in range(1, attempt_done + 1):
            u = _jitter_unit(self.config.seed, "backoff", token, i)
            sleep = min(cap, base + u * max(0.0, 3.0 * sleep - base))
        return sleep

    def _finish(
        self,
        result: SweepResult,
        outcome: CellOutcome,
        key: str | None,
    ) -> None:
        if outcome.ok and key is not None and self.cache is not None:
            self.cache.put(key, outcome.row)
        if not outcome.ok:
            result.metrics.bump("error")
            self._breaker.record_failure(outcome.application, outcome.category)
        self._journal_outcome(key, outcome)
        result.outcomes.append(outcome)

    def _skip(
        self,
        result: SweepResult,
        outcome: CellOutcome,
        key: str | None = None,
        error: str = SKIPPED_ERROR,
        counter: str = "skipped",
    ) -> None:
        outcome.skipped = True
        outcome.error = error
        result.metrics.bump(counter)
        self._journal_outcome(key, outcome)
        result.outcomes.append(outcome)

    def _skip_circuit(
        self,
        result: SweepResult,
        outcome: CellOutcome,
        key: str | None,
    ) -> None:
        self._skip(
            result,
            outcome,
            key,
            error=(
                f"{CIRCUIT_ERROR_PREFIX}: {outcome.application} failed "
                "deterministically too often"
            ),
            counter="circuit_open",
        )

    # -- shared trace plane --------------------------------------------

    def _plane_key(self, app: SimApplication) -> str:
        """Content-derived identity of one application's plane — the
        same inputs that pin a cell's cache key, minus the cell."""
        config = self.config
        return content_hash(
            {
                "kind": "trace-plane",
                "app": app_fingerprint(app),
                "machine": self.machine.name,
                "seed": config.seed,
                "fault_plan": (
                    config.fault_plan.to_dict()
                    if config.fault_plan is not None
                    else None
                ),
            }
        )

    def _plane_profile(
        self, app: SimApplication
    ) -> tuple[HybridMemoryFramework, ColumnarTrace]:
        """Profile ``app`` once, parent-side, and columnarise.

        Clean runs use the tracer's ``columnar_samples`` fast path —
        samples go from the PMU model straight into NumPy columns, so
        publishing costs a fraction of a worker's row-mode profile
        (attribution equality across the two modes is pinned by the
        tracer tests). A profile-degrading fault plan forces the
        row-mode path, because degradation operates on the row trace;
        the published trace then matches what every worker would have
        materialised privately, bit for bit.
        """
        config = self.config
        degrades = (
            config.fault_plan is not None
            and config.fault_plan.degrades_profile
        )
        tracer_config = (
            None
            if degrades
            else TracerConfig(
                sampling_period=app.sampling_period, columnar_samples=True
            )
        )
        framework = HybridMemoryFramework(
            app,
            self.machine,
            tracer_config=tracer_config,
            seed=config.seed,
            fault_plan=config.fault_plan,
        )
        profiling = framework.profile()
        if not degrades and profiling.tracer is not None:
            columnar = profiling.tracer.columnar_trace()
        elif isinstance(profiling.trace, ColumnarTrace):
            columnar = profiling.trace
        else:
            columnar = ColumnarTrace.from_tracefile(profiling.trace)
        return framework, columnar

    def _publish_planes(
        self,
        plane: SharedTracePlane,
        pending: list[tuple[SimApplication, CellOutcome, str | None]],
        result: SweepResult,
    ) -> dict[str, PlaneHandle]:
        """Profile and export each pending application exactly once.

        Publishing is an optimisation, never a gate: an application
        whose profile run fails here simply gets no handle — its cells
        run planeless and fail (or not) under the normal per-cell
        retry taxonomy, with ``plane_publish_failed`` counted.
        """
        handles: dict[str, PlaneHandle] = {}
        seen: set[str] = set()
        for app, _, _ in pending:
            if app.name in seen:
                continue
            seen.add(app.name)
            try:
                framework, columnar = self._plane_profile(app)
                handles[app.name] = plane.publish(
                    self._plane_key(app),
                    columnar,
                    framework.profile().ground_truth,
                )
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException:
                result.metrics.bump("plane_publish_failed")
                continue
            result.metrics.merge(framework.metrics)
            result.metrics.bump("plane_publish")
        return handles

    def _batch_size(self, n_pending: int, jobs: int) -> int:
        """Cells per pool submission.

        Explicit ``batch_size`` wins. Auto mode targets four batches
        per worker (enough slack for retries and stragglers to
        interleave, few enough submissions to amortise IPC), capped at
        32 — and stays at 1 while a per-attempt timeout is set, so the
        timeout keeps meaning "per cell".
        """
        config = self.config
        if config.batch_size is not None:
            return config.batch_size
        if config.timeout_seconds is not None:
            return 1
        return max(1, min(32, math.ceil(n_pending / (4 * jobs))))

    def _run_serial(
        self,
        pending: list[tuple[SimApplication, CellOutcome, str | None]],
        result: SweepResult,
    ) -> None:
        frameworks: dict = {}
        config = self.config
        failures = 0
        for app, outcome, key in pending:
            if (
                config.error_budget is not None
                and failures >= config.error_budget
            ):
                self._skip(result, outcome, key)
                continue
            if self._breaker.is_open(app.name):
                self._skip_circuit(result, outcome, key)
                continue
            for _ in range(1 + config.retries):
                if outcome.attempts > 0:
                    result.metrics.bump("retry")
                    delay = self._backoff(
                        outcome.attempts, (app.name, outcome.cell.key)
                    )
                    if delay > 0:
                        time.sleep(delay)
                outcome.attempts += 1
                start = time.monotonic()
                row, error, category, metrics = _execute_cell(
                    app,
                    self.machine,
                    outcome.cell,
                    config.seed,
                    frameworks=frameworks,
                    plan=config.fault_plan,
                    attempt=outcome.attempts,
                )
                elapsed = time.monotonic() - start
                outcome.metrics.merge(StageMetrics.from_dict(metrics))
                if (
                    config.timeout_seconds is not None
                    and elapsed > config.timeout_seconds
                ):
                    # The serial path cannot preempt, so the limit is
                    # enforced post-hoc: an over-budget attempt is a
                    # failure even if it eventually produced a row.
                    row = None
                    error = (
                        f"timeout: attempt took {elapsed:.3f}s "
                        f"(limit {config.timeout_seconds}s)"
                    )
                    category = CATEGORY_TRANSIENT
                    outcome.metrics.bump("timeout")
                elif (
                    config.cell_deadline is not None
                    and elapsed > config.cell_deadline
                ):
                    row = None
                    error = (
                        f"deadline: attempt took {elapsed:.3f}s "
                        f"(limit {config.cell_deadline}s)"
                    )
                    category = CATEGORY_TRANSIENT
                    outcome.metrics.bump("deadline_exceeded")
                outcome.row, outcome.error = row, error
                outcome.category = category
                if row is not None:
                    break
                if category == CATEGORY_POISONED:
                    # Re-running bad input reproduces the failure.
                    break
            if not outcome.ok:
                failures += 1
            self._finish(result, outcome, key)

    def _run_pool(
        self,
        pending: list[tuple[SimApplication, CellOutcome, str | None]],
        result: SweepResult,
        planes: dict[str, PlaneHandle] | None = None,
    ) -> None:
        config = self.config
        planes = planes or {}
        jobs = min(config.jobs, len(pending))
        batch_size = self._batch_size(len(pending), jobs)
        queue = deque(pending)
        #: (ready time, app, outcome, key) waiting out a backoff delay.
        retry_queue: list[tuple[float, SimApplication, CellOutcome, str | None]] = []
        failures = 0
        # The initializer arms the orphan watchdog in every worker: if
        # this parent is SIGKILL'd mid-sweep, workers self-terminate
        # instead of idling forever — which is also what lets the
        # resource tracker unlink a live shared trace plane.
        with ProcessPoolExecutor(
            max_workers=jobs, initializer=start_orphan_watchdog
        ) as pool:
            #: future -> (app, [(outcome, key), ...], deadline).
            inflight: dict = {}

            def budget_exhausted() -> bool:
                return (
                    config.error_budget is not None
                    and failures >= config.error_budget
                )

            def submit(app, items) -> None:
                for outcome, _ in items:
                    outcome.attempts += 1
                future = pool.submit(
                    _execute_batch,
                    app,
                    self.machine,
                    [outcome.cell for outcome, _ in items],
                    config.seed,
                    config.fault_plan,
                    [outcome.attempts for outcome, _ in items],
                    planes.get(app.name),
                )
                deadline = (
                    time.monotonic() + config.timeout_seconds * len(items)
                    if config.timeout_seconds is not None
                    else None
                )
                inflight[future] = (app, items, deadline)

            def settle(outcome, key, app) -> None:
                nonlocal failures
                if outcome.ok:
                    self._finish(result, outcome, key)
                    return
                if (
                    outcome.category != CATEGORY_POISONED
                    and outcome.attempts <= config.retries
                    and not budget_exhausted()
                ):
                    result.metrics.bump("retry")
                    ready = time.monotonic() + self._backoff(
                        outcome.attempts, (app.name, outcome.cell.key)
                    )
                    retry_queue.append((ready, app, outcome, key))
                    return
                failures += 1
                self._finish(result, outcome, key)

            while queue or inflight or retry_queue:
                now = time.monotonic()
                if budget_exhausted():
                    while queue:
                        _, outcome, key = queue.popleft()
                        self._skip(result, outcome, key)
                    # A cell already waiting on a retry keeps its last
                    # captured error instead of being granted more
                    # attempts.
                    for _, _, outcome, key in retry_queue:
                        failures += 1
                        self._finish(result, outcome, key)
                    retry_queue.clear()
                else:
                    retry_queue.sort(key=lambda item: item[0])
                    while (
                        retry_queue
                        and retry_queue[0][0] <= now
                        and len(inflight) < 2 * jobs
                    ):
                        # Retries re-dispatch as singleton batches:
                        # their backoff already de-batched them.
                        _, app, outcome, key = retry_queue.pop(0)
                        submit(app, [(outcome, key)])
                    while queue and len(inflight) < 2 * jobs:
                        app, outcome, key = queue.popleft()
                        if self._breaker.is_open(app.name):
                            self._skip_circuit(result, outcome, key)
                            continue
                        items = [(outcome, key)]
                        while (
                            len(items) < batch_size
                            and queue
                            and queue[0][0] is app
                        ):
                            _, next_outcome, next_key = queue.popleft()
                            items.append((next_outcome, next_key))
                        submit(app, items)
                if not inflight:
                    if retry_queue:
                        time.sleep(max(0.0, retry_queue[0][0] - now))
                    continue
                wake: float | None = None
                for _, _, deadline in inflight.values():
                    if deadline is not None:
                        wake = deadline if wake is None else min(wake, deadline)
                if retry_queue:
                    ready = min(item[0] for item in retry_queue)
                    wake = ready if wake is None else min(wake, ready)
                timeout = (
                    None if wake is None else max(0.0, wake - time.monotonic())
                )
                done, _ = wait(
                    inflight, timeout=timeout, return_when=FIRST_COMPLETED
                )
                for future in done:
                    app, items, _ = inflight.pop(future)
                    try:
                        payloads = future.result()
                    except (KeyboardInterrupt, SystemExit):
                        # The *parent's* interrupt/exit, not a cell
                        # outcome — never record it as a failure.
                        raise
                    except BaseException as exc:
                        # BrokenProcessPool-class faults: the payloads
                        # never came back; synthesise the error for
                        # every cell of the batch.
                        error_text = traceback.format_exc()
                        payloads = [
                            (None, error_text, classify_error(exc), {})
                        ] * len(items)
                    for (outcome, key), payload in zip(items, payloads):
                        row, error, category, metrics = payload
                        outcome.metrics.merge(
                            StageMetrics.from_dict(metrics)
                        )
                        outcome.row, outcome.error = row, error
                        outcome.category = category
                        settle(outcome, key, app)
                if config.timeout_seconds is not None:
                    now = time.monotonic()
                    for future, payload in list(inflight.items()):
                        app, items, deadline = payload
                        if deadline is None or now < deadline:
                            continue
                        # Cancel if still queued; a running attempt is
                        # abandoned (its eventual result is discarded)
                        # so the sweep never blocks on a hung cell.
                        future.cancel()
                        del inflight[future]
                        for outcome, key in items:
                            outcome.row = None
                            outcome.error = (
                                f"timeout: attempt exceeded "
                                f"{config.timeout_seconds}s"
                            )
                            outcome.category = CATEGORY_TRANSIENT
                            outcome.metrics.bump("timeout")
                            settle(outcome, key, app)

    def _run_supervised(
        self,
        pending: list[tuple[SimApplication, CellOutcome, str | None]],
        result: SweepResult,
        planes: dict[str, PlaneHandle] | None = None,
    ) -> None:
        """Run cells under the worker supervisor (``cell_deadline``
        set): hung/dead workers are killed and replaced, their cells
        requeued within the requeue budget. Dispatch stays per-cell —
        the deadline's kill/requeue unit is one cell — but workers
        still attach the shared plane when one is published."""
        config = self.config
        jobs = min(config.jobs, len(pending))
        queue = deque(pending)
        retry_queue: list[tuple[float, SimApplication, CellOutcome, str | None]] = []
        tasks: dict[int, tuple[SimApplication, CellOutcome, str | None]] = {}
        failures = 0
        supervisor = WorkerSupervisor(
            jobs,
            self.machine,
            config.seed,
            config.fault_plan,
            cell_deadline=config.cell_deadline,
            requeue_budget=config.requeue_budget,
            plane_handles=planes or None,
        )

        def budget_exhausted() -> bool:
            return (
                config.error_budget is not None
                and failures >= config.error_budget
            )

        def submit(app, outcome, key) -> None:
            outcome.attempts += 1
            task_id = supervisor.submit(app, outcome.cell, outcome.attempts)
            tasks[task_id] = (app, outcome, key)

        def settle_failure(app, outcome, key) -> None:
            nonlocal failures
            if (
                outcome.category != CATEGORY_POISONED
                and outcome.attempts <= config.retries
                and not budget_exhausted()
            ):
                result.metrics.bump("retry")
                ready = time.monotonic() + self._backoff(
                    outcome.attempts, (app.name, outcome.cell.key)
                )
                retry_queue.append((ready, app, outcome, key))
                return
            failures += 1
            self._finish(result, outcome, key)

        with supervisor:
            while queue or retry_queue or tasks:
                now = time.monotonic()
                if budget_exhausted():
                    while queue:
                        _, outcome, key = queue.popleft()
                        self._skip(result, outcome, key)
                    for _, _, outcome, key in retry_queue:
                        failures += 1
                        self._finish(result, outcome, key)
                    retry_queue.clear()
                else:
                    retry_queue.sort(key=lambda item: item[0])
                    while (
                        retry_queue
                        and retry_queue[0][0] <= now
                        and supervisor.capacity > 0
                    ):
                        _, app, outcome, key = retry_queue.pop(0)
                        if self._breaker.is_open(app.name):
                            failures += 1
                            self._finish(result, outcome, key)
                            continue
                        submit(app, outcome, key)
                    while queue and supervisor.capacity > 0:
                        app, outcome, key = queue.popleft()
                        if self._breaker.is_open(app.name):
                            self._skip_circuit(result, outcome, key)
                            continue
                        submit(app, outcome, key)
                if not tasks:
                    if retry_queue:
                        retry_queue.sort(key=lambda item: item[0])
                        time.sleep(max(0.0, retry_queue[0][0] - now))
                        continue
                    if queue:
                        continue
                    break
                timeout = 0.25
                if retry_queue:
                    ready = min(item[0] for item in retry_queue)
                    timeout = max(0.0, min(timeout, ready - now))
                for event in supervisor.poll(timeout):
                    if isinstance(event, CellResult):
                        entry = tasks.pop(event.task_id, None)
                        if entry is None:
                            continue
                        app, outcome, key = entry
                        outcome.metrics.merge(
                            StageMetrics.from_dict(event.metrics)
                        )
                        outcome.row = event.row
                        outcome.error = event.error
                        outcome.category = event.category
                        if outcome.ok:
                            self._finish(result, outcome, key)
                        else:
                            settle_failure(app, outcome, key)
                    elif isinstance(event, CellRequeued):
                        entry = tasks.get(event.task_id)
                        if entry is None:
                            continue
                        _, outcome, _ = entry
                        outcome.attempts += 1
                        result.metrics.bump("requeue")
                        result.metrics.bump(event.reason)
                    elif isinstance(event, CellAborted):
                        entry = tasks.pop(event.task_id, None)
                        if entry is None:
                            continue
                        app, outcome, key = entry
                        outcome.row = None
                        outcome.error = event.error
                        outcome.category = event.category
                        result.metrics.bump(event.reason)
                        failures += 1
                        self._finish(result, outcome, key)


def run_sweep(
    apps: list[SimApplication],
    machine: MachineConfig | None = None,
    grid: ExperimentGrid | None = None,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    seed: int = 0,
    retries: int = 1,
    backoff_seconds: float = 0.0,
    timeout_seconds: float | None = None,
    error_budget: int | None = None,
    fault_plan: FaultPlan | None = None,
    journal_dir: str | Path | None = None,
    resume: bool = False,
    cell_deadline: float | None = None,
    requeue_budget: int = 2,
    circuit_threshold: int | None = None,
    shared_plane: bool = False,
    plane_backend: str = "shm",
    batch_size: int | None = None,
) -> SweepResult:
    """Convenience wrapper: sweep ``apps`` with the given knobs."""
    executor = SweepExecutor(
        machine=machine,
        config=SweepConfig(
            jobs=jobs,
            cache_dir=cache_dir,
            seed=seed,
            retries=retries,
            backoff_seconds=backoff_seconds,
            timeout_seconds=timeout_seconds,
            error_budget=error_budget,
            fault_plan=fault_plan,
            journal_dir=journal_dir,
            resume=resume,
            cell_deadline=cell_deadline,
            requeue_budget=requeue_budget,
            circuit_threshold=circuit_threshold,
            shared_plane=shared_plane,
            plane_backend=plane_backend,
            batch_size=batch_size,
        ),
    )
    return executor.run(apps, grid=grid)
