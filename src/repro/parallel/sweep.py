"""Parallel Figure-4 sweep executor with caching and fault isolation.

The evaluation grid (apps x budgets x strategies x baselines) is
embarrassingly parallel: cells only share the placement-invariant
profiling run of their application, and that run is deterministic in
the seed. The executor therefore fans :class:`GridCell` work across a
``ProcessPoolExecutor`` where each worker process keeps one framework
(and hence one profiling run) per application, while the parent

* answers cells from the content-addressed :class:`ResultCache`
  *before* dispatching them, so a warm re-run executes zero pipeline
  stages (provable via :class:`StageMetrics` counters);
* isolates worker faults — a failing cell is retried once and, if it
  still fails, becomes an error :class:`CellOutcome` carrying the
  captured traceback instead of aborting the sweep;
* merges every per-cell :class:`StageMetrics` record into one
  sweep-level roll-up.

``jobs=1`` runs the same scheduler in-process (no pool), so the
serial and parallel paths share every line of cell-execution code.
"""

from __future__ import annotations

import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path

from repro.apps.base import SimApplication
from repro.errors import ConfigError
from repro.machine.config import MachineConfig, xeon_phi_7250
from repro.parallel.result_cache import ResultCache, cell_cache_key
from repro.pipeline.experiment import (
    ExperimentGrid,
    GridCell,
    collect_result,
    enumerate_cells,
    run_cell,
)
from repro.pipeline.framework import HybridMemoryFramework
from repro.pipeline.metrics import StageMetrics
from repro.pipeline.results import ExperimentResult, ResultRow


@dataclass
class SweepConfig:
    """Execution knobs of one sweep."""

    #: Worker processes; 1 executes in-process (no pool).
    jobs: int = 1
    #: Result-cache directory; None disables caching.
    cache_dir: str | Path | None = None
    #: Base seed; each application's framework profiles with it, so
    #: sweep rows match ``run_figure4_experiment(app, seed=seed)``.
    seed: int = 0
    #: Re-executions granted to a faulting cell before it is recorded
    #: as an error outcome.
    retries: int = 1


@dataclass
class CellOutcome:
    """One cell's result: a row, or a captured failure."""

    application: str
    cell: GridCell
    row: ResultRow | None = None
    #: Formatted traceback of the last attempt, if every attempt failed.
    error: str | None = None
    attempts: int = 0
    cached: bool = False
    metrics: StageMetrics = field(default_factory=StageMetrics)
    #: Position in the (app, cell) enumeration; outcomes are sorted by
    #: it so parallel completion order never leaks into the results.
    order: tuple[int, int] = (0, 0)

    @property
    def ok(self) -> bool:
        return self.row is not None


@dataclass
class SweepResult:
    """Everything one sweep produced."""

    outcomes: list[CellOutcome] = field(default_factory=list)
    #: Sweep-level roll-up of every cell's stage record plus the
    #: bookkeeping counters (cache_hit/cache_miss/error/retry).
    metrics: StageMetrics = field(default_factory=StageMetrics)

    @property
    def failures(self) -> list[CellOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def rows(self, application: str) -> dict[GridCell, ResultRow]:
        return {
            o.cell: o.row
            for o in self.outcomes
            if o.application == application and o.ok
        }

    def experiment(self, app: SimApplication) -> ExperimentResult:
        """Assemble one application's successful rows."""
        return collect_result(app, self.rows(app.name))


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

#: Per-worker-process framework memo: (app name, machine name, seed) ->
#: HybridMemoryFramework. Raw addresses and profiling runs are only
#: meaningful within one process (ASLR), so the memo — like the
#: paper's per-process decision cache — never crosses the pool.
_WORKER_FRAMEWORKS: dict[tuple[str, str, int], HybridMemoryFramework] = {}


def _execute_cell(
    app: SimApplication,
    machine: MachineConfig,
    cell: GridCell,
    seed: int,
    frameworks: dict | None = None,
) -> tuple[ResultRow | None, str | None, dict]:
    """Run one cell; never raises (the pool must stay healthy).

    Returns ``(row, traceback_text, metrics_dict)`` — the metrics
    cover only the stages this call actually executed, so the parent
    can sum them into a truthful sweep total. ``frameworks`` is the
    framework memo to use; pool workers default to the process-global
    one, the in-process serial path passes a per-sweep dict.
    """
    memo = _WORKER_FRAMEWORKS if frameworks is None else frameworks
    key = (app.name, machine.name, seed)
    framework = memo.get(key)
    if framework is None:
        framework = HybridMemoryFramework(app, machine, seed=seed)
        memo[key] = framework
    framework.metrics = StageMetrics()
    try:
        row = run_cell(framework, cell)
        return row, None, framework.metrics.to_dict()
    except Exception:
        return None, traceback.format_exc(), framework.metrics.to_dict()


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


class SweepExecutor:
    """Schedule, cache, retry and aggregate a grid of sweep cells."""

    def __init__(
        self,
        machine: MachineConfig | None = None,
        config: SweepConfig | None = None,
    ) -> None:
        self.machine = machine or xeon_phi_7250()
        self.config = config or SweepConfig()
        if self.config.jobs < 1:
            raise ConfigError("sweep needs at least one job")
        self.cache = (
            ResultCache(self.config.cache_dir)
            if self.config.cache_dir is not None
            else None
        )

    # -- public entry ---------------------------------------------------

    def run(
        self,
        apps: list[SimApplication],
        grid: ExperimentGrid | None = None,
    ) -> SweepResult:
        """Sweep every cell of every application."""
        result = SweepResult()
        pending: list[tuple[SimApplication, CellOutcome, str | None]] = []

        for app_index, app in enumerate(apps):
            for cell_index, cell in enumerate(enumerate_cells(app, grid)):
                outcome = CellOutcome(
                    application=app.name,
                    cell=cell,
                    order=(app_index, cell_index),
                )
                key = (
                    cell_cache_key(app, self.machine, cell, self.config.seed)
                    if self.cache is not None
                    else None
                )
                if key is not None:
                    row = self.cache.get(key)
                    if row is not None:
                        result.metrics.bump("cache_hit")
                        outcome.row, outcome.cached = row, True
                        result.outcomes.append(outcome)
                        continue
                    result.metrics.bump("cache_miss")
                pending.append((app, outcome, key))

        if pending:
            if self.config.jobs == 1:
                self._run_serial(pending, result)
            else:
                self._run_pool(pending, result)

        result.outcomes.sort(key=lambda o: o.order)
        for outcome in result.outcomes:
            result.metrics.merge(outcome.metrics)
        return result

    # -- execution strategies ------------------------------------------

    def _finish(
        self,
        result: SweepResult,
        outcome: CellOutcome,
        key: str | None,
    ) -> None:
        if outcome.ok and key is not None and self.cache is not None:
            self.cache.put(key, outcome.row)
        if not outcome.ok:
            result.metrics.bump("error")
        result.outcomes.append(outcome)

    def _run_serial(
        self,
        pending: list[tuple[SimApplication, CellOutcome, str | None]],
        result: SweepResult,
    ) -> None:
        frameworks: dict = {}
        for app, outcome, key in pending:
            for _ in range(1 + self.config.retries):
                outcome.attempts += 1
                if outcome.attempts > 1:
                    result.metrics.bump("retry")
                row, error, metrics = _execute_cell(
                    app, self.machine, outcome.cell, self.config.seed,
                    frameworks=frameworks,
                )
                outcome.metrics.merge(StageMetrics.from_dict(metrics))
                outcome.row, outcome.error = row, error
                if row is not None:
                    break
            self._finish(result, outcome, key)

    def _run_pool(
        self,
        pending: list[tuple[SimApplication, CellOutcome, str | None]],
        result: SweepResult,
    ) -> None:
        jobs = min(self.config.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            inflight = {}
            for app, outcome, key in pending:
                future = pool.submit(
                    _execute_cell,
                    app,
                    self.machine,
                    outcome.cell,
                    self.config.seed,
                )
                inflight[future] = outcome, key, app
            while inflight:
                done, _ = wait(inflight, return_when=FIRST_COMPLETED)
                for future in done:
                    outcome, key, app = inflight.pop(future)
                    outcome.attempts += 1
                    try:
                        row, error, metrics = future.result()
                    except Exception:
                        # BrokenProcessPool-class faults: the payload
                        # never came back; synthesise the error.
                        row, error = None, traceback.format_exc()
                        metrics = {}
                    outcome.metrics.merge(StageMetrics.from_dict(metrics))
                    outcome.row, outcome.error = row, error
                    if (
                        not outcome.ok
                        and outcome.attempts <= self.config.retries
                    ):
                        result.metrics.bump("retry")
                        retry = pool.submit(
                            _execute_cell,
                            app,
                            self.machine,
                            outcome.cell,
                            self.config.seed,
                        )
                        inflight[retry] = outcome, key, app
                        continue
                    self._finish(result, outcome, key)


def run_sweep(
    apps: list[SimApplication],
    machine: MachineConfig | None = None,
    grid: ExperimentGrid | None = None,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    seed: int = 0,
) -> SweepResult:
    """Convenience wrapper: sweep ``apps`` with the given knobs."""
    executor = SweepExecutor(
        machine=machine,
        config=SweepConfig(jobs=jobs, cache_dir=cache_dir, seed=seed),
    )
    return executor.run(apps, grid=grid)
