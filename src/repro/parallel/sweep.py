"""Parallel Figure-4 sweep executor with caching and fault isolation.

The evaluation grid (apps x budgets x strategies x baselines) is
embarrassingly parallel: cells only share the placement-invariant
profiling run of their application, and that run is deterministic in
the seed. The executor therefore fans :class:`GridCell` work across a
``ProcessPoolExecutor`` where each worker process keeps one framework
(and hence one profiling run) per application, while the parent

* answers cells from the content-addressed :class:`ResultCache`
  *before* dispatching them, so a warm re-run executes zero pipeline
  stages (provable via :class:`StageMetrics` counters);
* isolates worker faults — a failing cell is retried (configurable
  count, exponential backoff) and, if it still fails, becomes an
  error :class:`CellOutcome` carrying the captured traceback instead
  of aborting the sweep;
* enforces a per-cell attempt timeout and an optional error budget:
  once the budget of failed cells is spent, remaining cells are
  recorded as skipped instead of executed (fail-fast);
* merges every per-cell :class:`StageMetrics` record into one
  sweep-level roll-up.

``jobs=1`` runs the same scheduler in-process (no pool), so the
serial and parallel paths share every line of cell-execution code.
A :class:`~repro.faults.plan.FaultPlan` attached to the config is
reconstructed identically inside every worker (it travels by value),
so a faulted sweep is bit-reproducible across serial and parallel
execution.
"""

from __future__ import annotations

import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path

from repro.apps.base import SimApplication
from repro.errors import ConfigError, OutOfMemoryError
from repro.faults.injector import FATE_HANG, FATE_KILL, FaultInjector
from repro.faults.plan import FaultPlan
from repro.machine.config import MachineConfig, xeon_phi_7250
from repro.parallel.result_cache import ResultCache, cell_cache_key
from repro.pipeline.experiment import (
    ExperimentGrid,
    GridCell,
    collect_result,
    enumerate_cells,
    run_cell,
)
from repro.pipeline.framework import HybridMemoryFramework
from repro.pipeline.metrics import StageMetrics
from repro.pipeline.results import ExperimentResult, ResultRow

#: Error text of cells the error budget prevented from running.
SKIPPED_ERROR = "skipped: error budget exhausted"


@dataclass
class SweepConfig:
    """Execution knobs of one sweep."""

    #: Worker processes; 1 executes in-process (no pool).
    jobs: int = 1
    #: Result-cache directory; None disables caching.
    cache_dir: str | Path | None = None
    #: Base seed; each application's framework profiles with it, so
    #: sweep rows match ``run_figure4_experiment(app, seed=seed)``.
    seed: int = 0
    #: Re-executions granted to a faulting cell before it is recorded
    #: as an error outcome.
    retries: int = 1
    #: Base delay before a retry; attempt ``n`` waits
    #: ``backoff_seconds * 2**(n-1)`` (0 disables backoff).
    backoff_seconds: float = 0.0
    #: Wall-clock limit per cell attempt; an attempt exceeding it is
    #: treated as a failure (and retried). None: no limit.
    timeout_seconds: float | None = None
    #: After this many cells have *finally* failed, stop executing and
    #: record every remaining cell as skipped. None: run everything.
    error_budget: int | None = None
    #: Degradation schedule applied inside every cell. Part of the
    #: cache identity, so faulted and clean results never mix.
    fault_plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigError("sweep needs at least one job")
        if self.retries < 0:
            raise ConfigError("retries must be >= 0")
        if self.backoff_seconds < 0:
            raise ConfigError("backoff_seconds must be >= 0")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ConfigError("timeout_seconds must be positive")
        if self.error_budget is not None and self.error_budget < 1:
            raise ConfigError("error_budget must be >= 1")


@dataclass
class CellOutcome:
    """One cell's result: a row, a captured failure, or a skip."""

    application: str
    cell: GridCell
    row: ResultRow | None = None
    #: Formatted traceback of the last attempt, if every attempt failed.
    error: str | None = None
    attempts: int = 0
    cached: bool = False
    #: True when the error budget prevented this cell from running.
    skipped: bool = False
    metrics: StageMetrics = field(default_factory=StageMetrics)
    #: Position in the (app, cell) enumeration; outcomes are sorted by
    #: it so parallel completion order never leaks into the results.
    order: tuple[int, int] = (0, 0)

    @property
    def ok(self) -> bool:
        return self.row is not None


@dataclass
class SweepResult:
    """Everything one sweep produced."""

    outcomes: list[CellOutcome] = field(default_factory=list)
    #: Sweep-level roll-up of every cell's stage record plus the
    #: bookkeeping counters (cache_hit/cache_miss/error/retry/
    #: timeout/skipped and the fault-degradation counters).
    metrics: StageMetrics = field(default_factory=StageMetrics)

    @property
    def failures(self) -> list[CellOutcome]:
        """Cells that ran and failed (skipped cells excluded)."""
        return [o for o in self.outcomes if not o.ok and not o.skipped]

    @property
    def skipped(self) -> list[CellOutcome]:
        return [o for o in self.outcomes if o.skipped]

    def rows(self, application: str) -> dict[GridCell, ResultRow]:
        return {
            o.cell: o.row
            for o in self.outcomes
            if o.application == application and o.ok
        }

    def experiment(self, app: SimApplication) -> ExperimentResult:
        """Assemble one application's successful rows."""
        return collect_result(app, self.rows(app.name))


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

#: Per-worker-process framework memo: (app name, machine name, seed,
#: fault plan) -> HybridMemoryFramework. Raw addresses and profiling
#: runs are only meaningful within one process (ASLR), so the memo —
#: like the paper's per-process decision cache — never crosses the
#: pool. The plan is part of the key because it shapes the memoised
#: (possibly degraded) profiling run.
_WORKER_FRAMEWORKS: dict[tuple, HybridMemoryFramework] = {}


def _execute_cell(
    app: SimApplication,
    machine: MachineConfig,
    cell: GridCell,
    seed: int,
    frameworks: dict | None = None,
    plan: FaultPlan | None = None,
    attempt: int = 1,
) -> tuple[ResultRow | None, str | None, dict]:
    """Run one cell; never raises (the pool must stay healthy).

    Returns ``(row, traceback_text, metrics_dict)`` — the metrics
    cover only the stages this call actually executed, so the parent
    can sum them into a truthful sweep total. ``frameworks`` is the
    framework memo to use; pool workers default to the process-global
    one, the in-process serial path passes a per-sweep dict.
    """
    memo = _WORKER_FRAMEWORKS if frameworks is None else frameworks
    key = (app.name, machine.name, seed, plan)
    framework = memo.get(key)
    if framework is None:
        framework = HybridMemoryFramework(
            app, machine, seed=seed, fault_plan=plan
        )
        memo[key] = framework
    framework.metrics = StageMetrics()
    try:
        if plan is not None:
            injector = FaultInjector(plan)
            fate = injector.cell_fate(app.name, cell.key, attempt)
            if fate == FATE_HANG:
                framework.metrics.bump("cell_hung")
                time.sleep(plan.cell_hang_seconds)
            elif fate == FATE_KILL:
                framework.metrics.bump("cell_killed")
                raise injector.kill_error(app.name, cell.key, attempt)
        row = run_cell(framework, cell)
        return row, None, framework.metrics.to_dict()
    except OutOfMemoryError:
        framework.metrics.bump("oom")
        return None, traceback.format_exc(), framework.metrics.to_dict()
    except Exception:
        return None, traceback.format_exc(), framework.metrics.to_dict()


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


class SweepExecutor:
    """Schedule, cache, retry and aggregate a grid of sweep cells."""

    def __init__(
        self,
        machine: MachineConfig | None = None,
        config: SweepConfig | None = None,
    ) -> None:
        self.machine = machine or xeon_phi_7250()
        self.config = config or SweepConfig()
        self.cache = (
            ResultCache(self.config.cache_dir)
            if self.config.cache_dir is not None
            else None
        )

    # -- public entry ---------------------------------------------------

    def run(
        self,
        apps: list[SimApplication],
        grid: ExperimentGrid | None = None,
    ) -> SweepResult:
        """Sweep every cell of every application."""
        result = SweepResult()
        pending: list[tuple[SimApplication, CellOutcome, str | None]] = []

        for app_index, app in enumerate(apps):
            for cell_index, cell in enumerate(enumerate_cells(app, grid)):
                outcome = CellOutcome(
                    application=app.name,
                    cell=cell,
                    order=(app_index, cell_index),
                )
                key = (
                    cell_cache_key(
                        app,
                        self.machine,
                        cell,
                        self.config.seed,
                        fault_plan=self.config.fault_plan,
                    )
                    if self.cache is not None
                    else None
                )
                if key is not None:
                    row = self.cache.get(key)
                    if row is not None:
                        result.metrics.bump("cache_hit")
                        outcome.row, outcome.cached = row, True
                        result.outcomes.append(outcome)
                        continue
                    result.metrics.bump("cache_miss")
                pending.append((app, outcome, key))

        if pending:
            if self.config.jobs == 1:
                self._run_serial(pending, result)
            else:
                self._run_pool(pending, result)

        result.outcomes.sort(key=lambda o: o.order)
        for outcome in result.outcomes:
            result.metrics.merge(outcome.metrics)
        return result

    # -- execution strategies ------------------------------------------

    def _backoff(self, attempt_done: int) -> float:
        """Delay before the attempt after ``attempt_done`` failed."""
        if self.config.backoff_seconds <= 0:
            return 0.0
        return self.config.backoff_seconds * 2 ** (attempt_done - 1)

    def _finish(
        self,
        result: SweepResult,
        outcome: CellOutcome,
        key: str | None,
    ) -> None:
        if outcome.ok and key is not None and self.cache is not None:
            self.cache.put(key, outcome.row)
        if not outcome.ok:
            result.metrics.bump("error")
        result.outcomes.append(outcome)

    def _skip(self, result: SweepResult, outcome: CellOutcome) -> None:
        outcome.skipped = True
        outcome.error = SKIPPED_ERROR
        result.metrics.bump("skipped")
        result.outcomes.append(outcome)

    def _run_serial(
        self,
        pending: list[tuple[SimApplication, CellOutcome, str | None]],
        result: SweepResult,
    ) -> None:
        frameworks: dict = {}
        config = self.config
        failures = 0
        for app, outcome, key in pending:
            if (
                config.error_budget is not None
                and failures >= config.error_budget
            ):
                self._skip(result, outcome)
                continue
            for _ in range(1 + config.retries):
                if outcome.attempts > 0:
                    result.metrics.bump("retry")
                    delay = self._backoff(outcome.attempts)
                    if delay > 0:
                        time.sleep(delay)
                outcome.attempts += 1
                start = time.monotonic()
                row, error, metrics = _execute_cell(
                    app,
                    self.machine,
                    outcome.cell,
                    config.seed,
                    frameworks=frameworks,
                    plan=config.fault_plan,
                    attempt=outcome.attempts,
                )
                elapsed = time.monotonic() - start
                outcome.metrics.merge(StageMetrics.from_dict(metrics))
                if (
                    config.timeout_seconds is not None
                    and elapsed > config.timeout_seconds
                ):
                    # The serial path cannot preempt, so the limit is
                    # enforced post-hoc: an over-budget attempt is a
                    # failure even if it eventually produced a row.
                    row = None
                    error = (
                        f"timeout: attempt took {elapsed:.3f}s "
                        f"(limit {config.timeout_seconds}s)"
                    )
                    outcome.metrics.bump("timeout")
                outcome.row, outcome.error = row, error
                if row is not None:
                    break
            if not outcome.ok:
                failures += 1
            self._finish(result, outcome, key)

    def _run_pool(
        self,
        pending: list[tuple[SimApplication, CellOutcome, str | None]],
        result: SweepResult,
    ) -> None:
        config = self.config
        jobs = min(config.jobs, len(pending))
        queue = deque(pending)
        #: (ready time, app, outcome, key) waiting out a backoff delay.
        retry_queue: list[tuple[float, SimApplication, CellOutcome, str | None]] = []
        failures = 0
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            inflight: dict = {}

            def budget_exhausted() -> bool:
                return (
                    config.error_budget is not None
                    and failures >= config.error_budget
                )

            def submit(app, outcome, key) -> None:
                outcome.attempts += 1
                future = pool.submit(
                    _execute_cell,
                    app,
                    self.machine,
                    outcome.cell,
                    config.seed,
                    None,
                    config.fault_plan,
                    outcome.attempts,
                )
                deadline = (
                    time.monotonic() + config.timeout_seconds
                    if config.timeout_seconds is not None
                    else None
                )
                inflight[future] = (outcome, key, app, deadline)

            def settle(outcome, key, app) -> None:
                nonlocal failures
                if outcome.ok:
                    self._finish(result, outcome, key)
                    return
                if (
                    outcome.attempts <= config.retries
                    and not budget_exhausted()
                ):
                    result.metrics.bump("retry")
                    ready = time.monotonic() + self._backoff(outcome.attempts)
                    retry_queue.append((ready, app, outcome, key))
                    return
                failures += 1
                self._finish(result, outcome, key)

            while queue or inflight or retry_queue:
                now = time.monotonic()
                if budget_exhausted():
                    while queue:
                        _, outcome, _key = queue.popleft()
                        self._skip(result, outcome)
                    # A cell already waiting on a retry keeps its last
                    # captured error instead of being granted more
                    # attempts.
                    for _, _, outcome, key in retry_queue:
                        failures += 1
                        self._finish(result, outcome, key)
                    retry_queue.clear()
                else:
                    retry_queue.sort(key=lambda item: item[0])
                    while (
                        retry_queue
                        and retry_queue[0][0] <= now
                        and len(inflight) < 2 * jobs
                    ):
                        _, app, outcome, key = retry_queue.pop(0)
                        submit(app, outcome, key)
                    while queue and len(inflight) < 2 * jobs:
                        app, outcome, key = queue.popleft()
                        submit(app, outcome, key)
                if not inflight:
                    if retry_queue:
                        time.sleep(max(0.0, retry_queue[0][0] - now))
                    continue
                wake: float | None = None
                for _, _, _, deadline in inflight.values():
                    if deadline is not None:
                        wake = deadline if wake is None else min(wake, deadline)
                if retry_queue:
                    ready = min(item[0] for item in retry_queue)
                    wake = ready if wake is None else min(wake, ready)
                timeout = (
                    None if wake is None else max(0.0, wake - time.monotonic())
                )
                done, _ = wait(
                    inflight, timeout=timeout, return_when=FIRST_COMPLETED
                )
                for future in done:
                    outcome, key, app, _ = inflight.pop(future)
                    try:
                        row, error, metrics = future.result()
                    except Exception:
                        # BrokenProcessPool-class faults: the payload
                        # never came back; synthesise the error.
                        row, error = None, traceback.format_exc()
                        metrics = {}
                    outcome.metrics.merge(StageMetrics.from_dict(metrics))
                    outcome.row, outcome.error = row, error
                    settle(outcome, key, app)
                if config.timeout_seconds is not None:
                    now = time.monotonic()
                    for future, payload in list(inflight.items()):
                        outcome, key, app, deadline = payload
                        if deadline is None or now < deadline:
                            continue
                        # Cancel if still queued; a running attempt is
                        # abandoned (its eventual result is discarded)
                        # so the sweep never blocks on a hung cell.
                        future.cancel()
                        del inflight[future]
                        outcome.row = None
                        outcome.error = (
                            f"timeout: attempt exceeded "
                            f"{config.timeout_seconds}s"
                        )
                        outcome.metrics.bump("timeout")
                        settle(outcome, key, app)


def run_sweep(
    apps: list[SimApplication],
    machine: MachineConfig | None = None,
    grid: ExperimentGrid | None = None,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    seed: int = 0,
    retries: int = 1,
    backoff_seconds: float = 0.0,
    timeout_seconds: float | None = None,
    error_budget: int | None = None,
    fault_plan: FaultPlan | None = None,
) -> SweepResult:
    """Convenience wrapper: sweep ``apps`` with the given knobs."""
    executor = SweepExecutor(
        machine=machine,
        config=SweepConfig(
            jobs=jobs,
            cache_dir=cache_dir,
            seed=seed,
            retries=retries,
            backoff_seconds=backoff_seconds,
            timeout_seconds=timeout_seconds,
            error_budget=error_budget,
            fault_plan=fault_plan,
        ),
    )
    return executor.run(apps, grid=grid)
