"""SPMD job driver (MPI substitute).

The paper's MPI applications run 64 ranks doing near-identical work;
the evaluation's per-rank quantities (budgets, HWM, samples) are rank
symmetric. The job driver actually executes several ranks with
distinct seeds/ASLR/sampling phases — verifying that symmetry instead
of assuming it — and rolls per-rank observations up to node totals by
scaling the measured ranks to the declared geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.base import ProfilingRun, SimApplication
from repro.errors import WorkloadError
from repro.trace.tracer import TracerConfig


@dataclass
class JobSummary:
    """Aggregated observations of an SPMD profiling job."""

    ranks_declared: int
    ranks_simulated: int
    samples_per_rank: list[int] = field(default_factory=list)
    allocs_per_rank: list[int] = field(default_factory=list)
    hwm_bytes_per_rank: list[int] = field(default_factory=list)
    overhead_per_rank: list[float] = field(default_factory=list)
    duration: float = 0.0

    @staticmethod
    def _mean(values: list) -> float:
        """Mean that is 0.0 — not NaN-with-a-RuntimeWarning — for an
        empty per-rank list, so node-level estimates stay finite."""
        return float(np.mean(values)) if values else 0.0

    @property
    def mean_samples(self) -> float:
        return self._mean(self.samples_per_rank)

    @property
    def total_samples_estimate(self) -> float:
        """Node-level sample count, scaled to the declared rank count."""
        return self.mean_samples * self.ranks_declared

    @property
    def mean_hwm_bytes(self) -> float:
        return self._mean(self.hwm_bytes_per_rank)

    @property
    def total_hwm_bytes_estimate(self) -> float:
        return self.mean_hwm_bytes * self.ranks_declared

    @property
    def samples_per_second(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.mean_samples / self.duration

    @property
    def allocs_per_second(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self._mean(self.allocs_per_rank) / self.duration

    def rank_symmetry(self) -> float:
        """Coefficient of variation of per-rank sample counts (0 = exact
        symmetry). Small values justify the representative-rank
        roll-up."""
        mean = self.mean_samples
        if mean == 0:
            return 0.0
        return float(np.std(self.samples_per_rank)) / mean


class SPMDJob:
    """Run an application's profiling stage across several ranks."""

    def __init__(
        self,
        app: SimApplication,
        n_simulated_ranks: int = 4,
        tracer_config: TracerConfig | None = None,
    ) -> None:
        if n_simulated_ranks < 1:
            raise WorkloadError("need at least one simulated rank")
        if n_simulated_ranks > app.geometry.ranks:
            raise WorkloadError(
                f"cannot simulate {n_simulated_ranks} of "
                f"{app.geometry.ranks} ranks"
            )
        self.app = app
        self.n_simulated_ranks = n_simulated_ranks
        self.tracer_config = tracer_config or TracerConfig()

    def run(self, seed: int = 0) -> tuple[list[ProfilingRun], JobSummary]:
        """Profile each simulated rank; return runs plus the roll-up."""
        runs: list[ProfilingRun] = []
        summary = JobSummary(
            ranks_declared=self.app.geometry.ranks,
            ranks_simulated=self.n_simulated_ranks,
            duration=self.app.calibration.ddr_time,
        )
        for rank in range(self.n_simulated_ranks):
            run = self.app.run_profiling(
                seed=seed + rank, tracer_config=self.tracer_config
            )
            runs.append(run)
            summary.samples_per_rank.append(run.tracer.n_samples)
            summary.allocs_per_rank.append(
                run.process.posix.stats.n_allocs
            )
            summary.hwm_bytes_per_rank.append(
                int(run.process.posix.stats.hwm_bytes / self.app.scale)
            )
            summary.overhead_per_rank.append(run.tracer.overhead_seconds)
        return runs, summary
