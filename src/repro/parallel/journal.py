"""Crash-consistent write-ahead journal for sweep execution.

A multi-hour sweep must survive the death of the *parent* process —
SIGKILL, OOM, preemption — not just in-band cell faults. The journal
makes the sweep's progress durable: before any cell is dispatched its
*intent* is appended, and the moment a cell settles (row, failure or
skip) its full :class:`~repro.parallel.sweep.CellOutcome` is appended.
A relaunched sweep (``--resume``) replays the settled outcomes and
executes only the cells the journal does not answer.

Crash consistency rests on three properties:

* **append-only JSONL** — a crash can only damage the tail, never
  rewrite history;
* **fsynced appends** — every outcome record is flushed and fsynced
  before the sweep proceeds, and the journal's directory is fsynced
  at creation so the file's very existence is durable (see
  :func:`repro.ioutil.fsync_dir`);
* **per-record checksums** — every line carries a CRC-32 over its
  canonical encoding, so a torn or bit-rotted tail is *detected*
  rather than replayed; reading stops at the first damaged record and
  resuming truncates the file back to the last intact byte before
  appending.

Records are keyed by the same content hash the result cache uses
(:func:`repro.parallel.result_cache.cell_cache_key`), so a journal can
only ever answer the exact (app model, machine, cell, seed, fault
plan, code version) it was written for; the manifest record pins the
whole sweep's identity and a resume against a different sweep raises
:class:`~repro.errors.JournalError` instead of mixing results.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import JournalError
from repro.ioutil import fsync_dir

#: Bump when the record layout changes incompatibly.
JOURNAL_SCHEMA_VERSION = 1

#: File name of the journal inside its directory.
JOURNAL_FILENAME = "sweep.journal"

#: Record types, in the order a healthy journal emits them.
RECORD_MANIFEST = "manifest"
RECORD_RESUME = "resume"
RECORD_INTENT = "intent"
RECORD_OUTCOME = "outcome"
RECORD_END = "end"


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def encode_record(record_type: str, payload: dict) -> str:
    """One journal line: type + payload + CRC-32 over both."""
    body = _canonical(
        {"v": JOURNAL_SCHEMA_VERSION, "type": record_type, "payload": payload}
    )
    crc = zlib.crc32(body.encode()) & 0xFFFFFFFF
    return _canonical(
        {
            "v": JOURNAL_SCHEMA_VERSION,
            "type": record_type,
            "payload": payload,
            "crc": crc,
        }
    )


def decode_record(line: str) -> tuple[str, dict] | None:
    """Parse one journal line; None if damaged (bad JSON or bad CRC)."""
    try:
        record = json.loads(line)
    except ValueError:
        return None
    if not isinstance(record, dict):
        return None
    crc = record.get("crc")
    record_type = record.get("type")
    payload = record.get("payload")
    if not isinstance(record_type, str) or not isinstance(payload, dict):
        return None
    body = _canonical(
        {
            "v": record.get("v", JOURNAL_SCHEMA_VERSION),
            "type": record_type,
            "payload": payload,
        }
    )
    if crc != zlib.crc32(body.encode()) & 0xFFFFFFFF:
        return None
    return record_type, payload


@dataclass
class JournalReplay:
    """Everything a journal answers about a prior (possibly crashed) run."""

    manifest: dict | None = None
    #: Settled outcomes, keyed by the cell's content-hash key.
    settled: dict[str, dict] = field(default_factory=dict)
    #: Intents recorded, keyed the same way (settled or not).
    intents: dict[str, dict] = field(default_factory=dict)
    #: True when the prior run wrote its end record (completed cleanly).
    completed: bool = False
    #: Records lost to a damaged tail (0 on a clean journal).
    damaged_records: int = 0
    #: Byte offset of the last intact record boundary; a resumer
    #: truncates the file here before appending.
    good_bytes: int = 0

    @property
    def inflight(self) -> list[str]:
        """Keys of cells that were dispatched but never settled —
        the cells a crash interrupted mid-execution."""
        return [k for k in self.intents if k not in self.settled]


def read_journal(path: str | Path) -> JournalReplay:
    """Replay a journal file, stopping at the first damaged record.

    Damage past the first bad byte is counted, not parsed: an
    append-only writer can only tear the tail, so everything after a
    bad record is untrusted by construction.
    """
    path = Path(path)
    replay = JournalReplay()
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc
    offset = 0
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        if newline == -1:
            # An unterminated tail is a torn write even if it happens
            # to parse — never trust it.
            replay.damaged_records = 1
            break
        chunk = raw[offset:newline]
        if chunk:
            decoded = decode_record(chunk.decode("utf-8", errors="replace"))
            if decoded is None:
                # Everything past the first bad record is untrusted:
                # an append-only writer can only damage a suffix.
                tail = raw[offset:].split(b"\n")
                replay.damaged_records = sum(1 for c in tail if c)
                break
            record_type, payload = decoded
            if record_type == RECORD_MANIFEST:
                replay.manifest = payload
            elif record_type == RECORD_INTENT:
                key = payload.get("key")
                if isinstance(key, str):
                    replay.intents[key] = payload
            elif record_type == RECORD_OUTCOME:
                key = payload.get("key")
                if isinstance(key, str):
                    replay.settled[key] = payload
            elif record_type == RECORD_END:
                replay.completed = True
        offset = newline + 1
        replay.good_bytes = offset
    return replay


class SweepJournal:
    """Append-only writer half of the journal protocol."""

    def __init__(self, path: Path, fh) -> None:
        self.path = path
        self._fh = fh
        self.records_written = 0

    # -- opening --------------------------------------------------------

    @classmethod
    def create(cls, directory: str | Path, manifest: dict) -> "SweepJournal":
        """Start a fresh journal (truncating any prior one)."""
        directory = Path(directory)
        try:
            directory.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as exc:
            raise JournalError(
                f"journal dir {directory} is not a directory"
            ) from exc
        path = directory / JOURNAL_FILENAME
        fh = open(path, "w", encoding="utf-8")
        journal = cls(path, fh)
        journal.append(RECORD_MANIFEST, manifest)
        # The file's existence must survive a crash too.
        fsync_dir(directory)
        return journal

    @classmethod
    def resume(
        cls, directory: str | Path, manifest: dict
    ) -> tuple["SweepJournal", JournalReplay]:
        """Reopen an existing journal and return its replay state.

        A missing journal degrades to a cold start (empty replay); a
        journal written by a *different* sweep raises
        :class:`~repro.errors.JournalError`. A damaged tail is
        truncated back to the last intact record so appends land on a
        clean boundary.
        """
        directory = Path(directory)
        path = directory / JOURNAL_FILENAME
        if not path.exists():
            return cls.create(directory, manifest), JournalReplay()
        replay = read_journal(path)
        if replay.manifest is None:
            raise JournalError(
                f"{path}: no intact manifest record; not a sweep journal "
                "(or its head was destroyed)"
            )
        theirs = replay.manifest.get("sweep_key")
        ours = manifest.get("sweep_key")
        if theirs != ours:
            raise JournalError(
                f"{path}: journal belongs to a different sweep "
                f"(journal sweep_key {theirs!r}, this sweep {ours!r}); "
                "refusing to mix results — use a fresh --journal-dir"
            )
        if replay.good_bytes < path.stat().st_size:
            with open(path, "rb+") as repair:
                repair.truncate(replay.good_bytes)
                repair.flush()
                os.fsync(repair.fileno())
        fh = open(path, "a", encoding="utf-8")
        journal = cls(path, fh)
        journal.append(
            RECORD_RESUME,
            {
                "replayed": len(replay.settled),
                "inflight": len(replay.inflight),
                "damaged_records": replay.damaged_records,
            },
        )
        return journal, replay

    # -- appending ------------------------------------------------------

    def append(self, record_type: str, payload: dict) -> None:
        """Append one record, flushed and fsynced before returning."""
        self._fh.write(encode_record(record_type, payload) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.records_written += 1

    def append_intents(self, payloads: list[dict]) -> None:
        """Append a batch of intents with one fsync for the lot —
        intents are advisory (they name what *would* run), so one
        barrier per scheduling wave is enough."""
        if not payloads:
            return
        for payload in payloads:
            self._fh.write(encode_record(RECORD_INTENT, payload) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.records_written += len(payloads)

    def record_outcome(self, payload: dict) -> None:
        self.append(RECORD_OUTCOME, payload)

    def record_end(self, summary: dict) -> None:
        self.append(RECORD_END, summary)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
