"""Worker supervision for the sweep executor.

``ProcessPoolExecutor`` cannot kill an individual hung worker — a cell
stuck in an infinite loop (or a worker frozen by SIGSTOP) blocks its
slot forever and a SIGKILLed worker poisons the whole pool. The
supervisor therefore owns its workers directly: each is a
``multiprocessing.Process`` driven over a duplex pipe, executing one
cell at a time, with a daemon thread emitting heartbeats so the parent
can tell *frozen* from *slow*.

The parent's supervision state machine, per worker::

    spawned -> ready -> busy(cell, deadline) -> idle -> ...
                |            |
                |            +-- deadline exceeded --> killed, cell requeued
                |            +-- heartbeat stale ----> killed, cell requeued
                +-- process died (EOF/!is_alive) ----> cell requeued

Requeues are *bounded* (``requeue_budget`` per dispatched cell); a
cell that outlives the budget is surfaced as a terminal
:class:`CellAborted` event carrying a transient-category error, so the
sweep records an honest failure instead of looping forever. Killed and
dead workers are replaced immediately, keeping the pool at strength.

Execution is at-least-once: a worker killed in the instant between
finishing a cell and the parent reading its result causes one wasted
re-execution, but outcomes settle exactly once (the dead worker's pipe
is never read again).

:class:`CircuitBreaker` is the complementary guard for *deterministic*
failure: when an application's cells keep failing with
``deterministic``-category errors across workers, its circuit opens
and the executor refuses the app's remaining cells outright instead of
grinding every one through its full retry schedule.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.errors import (
    CATEGORY_DETERMINISTIC,
    CATEGORY_POISONED,
    CellDeadlineError,
    ConfigError,
    WorkerCrashError,
)

#: Requeue reasons (also used as metric counter names by the sweep).
REASON_CRASH = "worker_crash"
REASON_DEADLINE = "deadline_kill"
REASON_STALLED = "worker_stalled"


def _supervised_worker_main(
    conn, machine, seed, plan, heartbeat_interval: float,
    plane_handles: dict | None = None,
) -> None:
    """Worker loop: recv cell, ack, execute, send result, repeat.

    A daemon thread heartbeats on the same pipe (send is locked) so
    the parent sees liveness even while a cell computes; the beats
    stop only when the process itself stops scheduling threads — which
    is exactly the failure the stall detector exists for.

    ``plane_handles`` (application name -> plane handle) lets each
    cell reconstruct its framework from the host's shared trace plane
    instead of re-profiling; apps without a handle — or with a torn
    plane — materialise privately, exactly like the pool path.
    """
    # Imported here, not at module top: repro.parallel.sweep imports
    # this module, and the worker needs sweep's _execute_cell.
    from repro.parallel.sweep import _execute_cell
    from repro.parallel.watchdog import start_orphan_watchdog

    start_orphan_watchdog()
    frameworks: dict = {}
    plane_handles = plane_handles or {}
    send_lock = threading.Lock()
    stop_beating = threading.Event()

    def beat() -> None:
        while not stop_beating.wait(heartbeat_interval):
            try:
                with send_lock:
                    conn.send(("beat", time.monotonic()))
            except (BrokenPipeError, OSError):
                return

    threading.Thread(target=beat, daemon=True).start()
    try:
        with send_lock:
            conn.send(("ready", os.getpid()))
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            _, task_id, app, cell, attempt = message
            with send_lock:
                conn.send(("start", task_id))
            row, error, category, metrics = _execute_cell(
                app,
                machine,
                cell,
                seed,
                frameworks=frameworks,
                plan=plan,
                attempt=attempt,
                plane=plane_handles.get(app.name),
            )
            with send_lock:
                conn.send(("done", task_id, row, error, category, metrics))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        stop_beating.set()
        try:
            conn.close()
        except OSError:
            pass


@dataclass
class TaskSpec:
    """One dispatched cell, as the supervisor tracks it."""

    task_id: int
    app: Any
    cell: Any
    #: Attempt number passed to the worker; bumped on every requeue so
    #: seeded fault injection sees requeues as fresh attempts.
    attempt: int
    requeues: int = 0


@dataclass
class WorkerHandle:
    """Parent-side view of one worker process."""

    ident: int
    proc: multiprocessing.Process
    conn: Any
    task: TaskSpec | None = None
    deadline: float | None = None
    last_beat: float = field(default_factory=time.monotonic)
    cells_done: int = 0


# -- events the poll loop emits --------------------------------------------


@dataclass
class CellResult:
    """A worker finished a cell (successfully or not) in-band."""

    task_id: int
    row: Any
    error: str | None
    category: str | None
    metrics: dict


@dataclass
class CellRequeued:
    """A cell's worker was lost; the cell went back to the queue."""

    task_id: int
    reason: str
    requeues: int


@dataclass
class CellAborted:
    """A cell exhausted its requeue budget; terminal failure."""

    task_id: int
    error: str
    category: str
    reason: str


class WorkerSupervisor:
    """Own, feed, watch, kill and replace a fleet of cell workers."""

    def __init__(
        self,
        jobs: int,
        machine,
        seed: int,
        plan,
        *,
        cell_deadline: float | None = None,
        requeue_budget: int = 2,
        heartbeat_interval: float = 0.25,
        heartbeat_timeout: float | None = None,
        plane_handles: dict | None = None,
    ) -> None:
        if jobs < 1:
            raise ConfigError("supervisor needs at least one worker")
        if cell_deadline is not None and cell_deadline <= 0:
            raise ConfigError("cell_deadline must be positive")
        if requeue_budget < 0:
            raise ConfigError("requeue_budget must be >= 0")
        self.jobs = jobs
        self.machine = machine
        self.seed = seed
        self.plan = plan
        self.plane_handles = plane_handles
        self.cell_deadline = cell_deadline
        self.requeue_budget = requeue_budget
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self._ctx = multiprocessing.get_context()
        self.workers: dict[int, WorkerHandle] = {}
        self._queue: deque[TaskSpec] = deque()
        self._next_worker = 0
        self._next_task = 0
        #: Workers killed/lost, by reason (observability roll-up).
        self.losses: dict[str, int] = {}

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        for _ in range(self.jobs):
            self._spawn()

    def stop(self) -> None:
        """Shut every worker down, escalating politely-then-SIGKILL."""
        for handle in self.workers.values():
            try:
                handle.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for handle in self.workers.values():
            handle.proc.join(timeout=1.0)
            if handle.proc.is_alive():
                handle.proc.kill()
                handle.proc.join(timeout=1.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        self.workers.clear()
        self._queue.clear()

    def __enter__(self) -> "WorkerSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _spawn(self) -> WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_supervised_worker_main,
            args=(
                child_conn,
                self.machine,
                self.seed,
                self.plan,
                self.heartbeat_interval,
                self.plane_handles,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        handle = WorkerHandle(
            ident=self._next_worker, proc=proc, conn=parent_conn
        )
        self._next_worker += 1
        self.workers[handle.ident] = handle
        return handle

    # -- feeding --------------------------------------------------------

    @property
    def inflight(self) -> int:
        return sum(1 for w in self.workers.values() if w.task is not None)

    @property
    def capacity(self) -> int:
        """Cells the supervisor can absorb right now without queueing
        behind a busy worker (requeued cells take priority)."""
        return max(0, len(self.workers) - self.inflight - len(self._queue))

    def submit(self, app, cell, attempt: int) -> int:
        """Accept one cell; returns its task id."""
        task = TaskSpec(
            task_id=self._next_task, app=app, cell=cell, attempt=attempt
        )
        self._next_task += 1
        self._queue.append(task)
        self._dispatch()
        return task.task_id

    def _dispatch(self) -> None:
        for handle in self.workers.values():
            if not self._queue:
                return
            if handle.task is not None or not handle.proc.is_alive():
                continue
            task = self._queue.popleft()
            try:
                handle.conn.send(
                    ("cell", task.task_id, task.app, task.cell, task.attempt)
                )
            except (BrokenPipeError, OSError):
                # Dead worker discovered at dispatch: put the task
                # back; the poll loop reaps and replaces the worker.
                self._queue.appendleft(task)
                continue
            handle.task = task
            # The clock starts at dispatch (not at the worker's ack),
            # so a worker dead-on-arrival still trips the deadline.
            handle.deadline = (
                time.monotonic() + self.cell_deadline
                if self.cell_deadline is not None
                else None
            )

    # -- supervision ----------------------------------------------------

    def _lose_worker(
        self, handle: WorkerHandle, reason: str
    ) -> list[CellRequeued | CellAborted]:
        """Reap one lost worker: requeue/abort its cell, replace it."""
        self.losses[reason] = self.losses.get(reason, 0) + 1
        self.workers.pop(handle.ident, None)
        if handle.proc.is_alive():
            handle.proc.kill()
        handle.proc.join(timeout=1.0)
        try:
            handle.conn.close()
        except OSError:
            pass
        events: list[CellRequeued | CellAborted] = []
        task = handle.task
        if task is not None:
            if task.requeues < self.requeue_budget:
                task.requeues += 1
                task.attempt += 1
                self._queue.appendleft(task)
                events.append(
                    CellRequeued(task.task_id, reason, task.requeues)
                )
            else:
                if reason == REASON_DEADLINE:
                    exc: Exception = CellDeadlineError(
                        f"cell exceeded its {self.cell_deadline}s deadline "
                        f"on {task.requeues + 1} worker(s); worker killed"
                    )
                else:
                    exc = WorkerCrashError(
                        f"worker died executing the cell ({reason}); "
                        f"requeue budget ({self.requeue_budget}) exhausted"
                    )
                events.append(
                    CellAborted(
                        task.task_id, str(exc), exc.category, reason
                    )
                )
        self._spawn()
        return events

    def poll(self, timeout: float = 0.1) -> list:
        """Advance the world: dispatch, wait, reap. Returns events."""
        self._dispatch()
        events: list = []
        now = time.monotonic()
        # Wake early enough to enforce the nearest deadline.
        wake = now + timeout
        for handle in self.workers.values():
            if handle.deadline is not None:
                wake = min(wake, handle.deadline)
            if self.heartbeat_timeout is not None:
                wake = min(wake, handle.last_beat + self.heartbeat_timeout)
        conns = {w.conn: w for w in self.workers.values()}
        ready = multiprocessing.connection.wait(
            list(conns), timeout=max(0.0, wake - now)
        )
        dead: list[WorkerHandle] = []
        for conn in ready:
            handle = conns[conn]
            try:
                while conn.poll():
                    events.extend(self._handle_message(handle, conn.recv()))
            except (EOFError, OSError):
                dead.append(handle)
        now = time.monotonic()
        for handle in list(self.workers.values()):
            if handle in dead or not handle.proc.is_alive():
                events.extend(self._lose_worker(handle, REASON_CRASH))
            elif (
                handle.task is not None
                and handle.deadline is not None
                and now > handle.deadline
            ):
                # Salvage a result that landed after the drain above
                # but before the kill — cheap, and avoids one wasted
                # re-execution.
                try:
                    while handle.conn.poll():
                        events.extend(
                            self._handle_message(handle, handle.conn.recv())
                        )
                except (EOFError, OSError):
                    events.extend(self._lose_worker(handle, REASON_CRASH))
                    continue
                if handle.task is not None:
                    events.extend(self._lose_worker(handle, REASON_DEADLINE))
            elif (
                self.heartbeat_timeout is not None
                and now - handle.last_beat > self.heartbeat_timeout
            ):
                events.extend(self._lose_worker(handle, REASON_STALLED))
        self._dispatch()
        return events

    def _handle_message(self, handle: WorkerHandle, message: tuple) -> list:
        kind = message[0]
        handle.last_beat = time.monotonic()
        if kind == "done":
            _, task_id, row, error, category, metrics = message
            if handle.task is None or handle.task.task_id != task_id:
                return []  # stale message from an already-reaped task
            handle.task = None
            handle.deadline = None
            handle.cells_done += 1
            return [CellResult(task_id, row, error, category, metrics)]
        # "ready", "start" and "beat" are pure liveness signals.
        return []


class CircuitBreaker:
    """Per-application deterministic-failure circuit.

    Counts cells that *finally* failed with a ``deterministic`` or
    ``poisoned-input`` category (transient faults never count). Once
    an application accumulates ``threshold`` such failures its circuit
    opens and the executor refuses its remaining cells, bounding the
    cost of an application model that is simply broken.
    """

    def __init__(self, threshold: int | None) -> None:
        if threshold is not None and threshold < 1:
            raise ConfigError("circuit threshold must be >= 1")
        self.threshold = threshold
        self.failures: dict[str, int] = {}

    def record_failure(self, application: str, category: str | None) -> None:
        if category in (CATEGORY_DETERMINISTIC, CATEGORY_POISONED):
            self.failures[application] = self.failures.get(application, 0) + 1

    def is_open(self, application: str) -> bool:
        if self.threshold is None:
            return False
        return self.failures.get(application, 0) >= self.threshold
