"""SPMD execution substrate (MPI substitute) and the sweep executor."""

from repro.parallel.job import SPMDJob, JobSummary
from repro.parallel.journal import (
    JournalReplay,
    SweepJournal,
    read_journal,
)
from repro.parallel.result_cache import ResultCache, cell_cache_key
from repro.parallel.supervisor import CircuitBreaker, WorkerSupervisor
from repro.parallel.sweep import (
    CellOutcome,
    SweepConfig,
    SweepExecutor,
    SweepResult,
    run_sweep,
)

__all__ = [
    "SPMDJob",
    "JobSummary",
    "ResultCache",
    "cell_cache_key",
    "CellOutcome",
    "SweepConfig",
    "SweepExecutor",
    "SweepResult",
    "run_sweep",
    "SweepJournal",
    "JournalReplay",
    "read_journal",
    "WorkerSupervisor",
    "CircuitBreaker",
]
