"""SPMD execution substrate (MPI substitute)."""

from repro.parallel.job import SPMDJob, JobSummary

__all__ = ["SPMDJob", "JobSummary"]
