"""Orphan watchdog: workers must not outlive a SIGKILL'd parent.

A fork-started pool worker blocks reading a call queue whose write end
it inherited itself, so losing the parent never delivers EOF — the
orphan would sit there forever, and while it sits it also pins open
the ``multiprocessing.resource_tracker`` pipe it inherited. The
tracker only performs its crash cleanup (unlinking shared-memory
segments such as the sweep's trace plane) once *every* holder of that
pipe is gone, so orphaned workers turn a SIGKILL'd sweep into a
/dev/shm leak.

The watchdog is a daemon thread that polls the parent pid and
hard-exits the worker the moment it is re-parented. Exiting drops the
worker's inherited pipe ends, which lets the surviving resource
tracker run its cleanup and unlink the plane.
"""

from __future__ import annotations

import os
import threading
import time

__all__ = ["start_orphan_watchdog"]

#: Seconds between parent-pid checks. Cheap enough to keep tight so a
#: killed sweep's resources come back promptly.
_WATCH_INTERVAL = 0.25


def start_orphan_watchdog(interval: float = _WATCH_INTERVAL) -> threading.Thread:
    """Start the orphan watchdog in the calling (worker) process.

    Records the current parent pid; once ``os.getppid()`` reports a
    different one (the parent died and the worker was re-parented),
    the worker is terminated with :func:`os._exit` — the process is
    an orphan mid-batch, so no result it could produce has a reader,
    and a hard exit is what releases the inherited pipes.
    """
    parent = os.getppid()

    def _watch() -> None:
        while True:
            if os.getppid() != parent:
                os._exit(1)
            time.sleep(interval)

    thread = threading.Thread(
        target=_watch, name="orphan-watchdog", daemon=True
    )
    thread.start()
    return thread
