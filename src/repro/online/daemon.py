"""The online re-advising loop: window → attribute → advise → diff →
migrate.

The batch pipeline runs profile → analyze → advise → re-execute once.
The daemon modelled here instead watches the *same* sample stream
arrive in wall-clock windows, and at every window boundary:

1. advances a resumable :class:`IncrementalAttributor` cursor to the
   boundary and takes a cumulative snapshot;
2. forms the *window profile* — miss/latency deltas against the
   previous snapshot, with cumulative sizes (an object's size is a
   fact, not a rate);
3. re-solves placement with the ordinary :class:`HmemAdvisor` under
   the same budget and strategy the batch path would use;
4. debounces the advised set through a :class:`HysteresisFilter` and
   diffs it against the currently applied placement into promote and
   demote :class:`MigrationAction`s.

A decision made at the end of window *w* takes effect *during* window
``w+1`` — the daemon cannot retroactively accelerate traffic it has
already observed. Every migrated byte is accounted and later charged
to the run's memory time by the scoring layer.

The whole loop is deterministic given (trace, budget, config): the
emitted decision journal is byte-stable across runs, which is what
the CI online-smoke job asserts.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.advisor.advisor import HmemAdvisor
from repro.advisor.strategies import get_strategy
from repro.analysis.attribution import AttributionResult
from repro.analysis.profile import ProfileSet
from repro.analysis.vectorattr import IncrementalAttributor
from repro.errors import ConfigError
from repro.machine.performance import MIGRATION_BANDWIDTH_DEFAULT
from repro.online.migration import (
    DEMOTE,
    PROMOTE,
    HysteresisFilter,
    MigrationAction,
    diff_placements,
)


@dataclass(frozen=True, slots=True)
class OnlineConfig:
    """Knobs of the re-advising daemon."""

    #: Decision interval in simulated seconds; None derives it from
    #: ``n_windows`` over the run's calibrated wall time.
    window_seconds: float | None = None
    #: Number of equal windows when ``window_seconds`` is None.
    n_windows: int = 16
    #: Selection strategy name (same registry as the batch advisor).
    strategy: str = "misses-0%"
    #: Consecutive windows a site must win/lose its placement before
    #: the migration is issued (1 = act immediately).
    confirm_windows: int = 1
    #: Sustained tier-to-tier migration bandwidth, bytes/second.
    migration_bandwidth: float = MIGRATION_BANDWIDTH_DEFAULT

    def __post_init__(self) -> None:
        if self.window_seconds is not None and self.window_seconds <= 0:
            raise ConfigError("window_seconds must be positive")
        if self.n_windows < 1:
            raise ConfigError("need at least one window")
        if self.confirm_windows < 1:
            raise ConfigError("confirm_windows must be >= 1")
        if self.migration_bandwidth <= 0:
            raise ConfigError("migration bandwidth must be positive")


@dataclass(frozen=True, slots=True)
class WindowDecision:
    """What the daemon decided at the end of one window."""

    index: int
    t0: float
    t1: float
    #: Sites the advisor selected from this window's profile.
    advised: tuple[str, ...]
    #: Sites actually placed fast after hysteresis.
    applied: tuple[str, ...]
    actions: tuple[MigrationAction, ...]


@dataclass
class OnlineRun:
    """Full record of one online session (decisions + placement
    schedule), ready for scoring and journaling."""

    application: str
    budget_real: int
    config: OnlineConfig
    decisions: list[WindowDecision] = field(default_factory=list)
    #: ``(t0, t1, sites-fast-during-this-window)`` — the placement in
    #: force while each window executed (decision lag included).
    schedule: list[tuple[float, float, frozenset[str]]] = field(
        default_factory=list
    )
    migrated_bytes_real: int = 0

    @property
    def actions(self) -> list[MigrationAction]:
        return [a for d in self.decisions for a in d.actions]

    def active_sites(self, t: float) -> frozenset[str]:
        """Sites placed fast at simulated instant ``t``."""
        if not self.schedule:
            return frozenset()
        starts = [t0 for t0, _, _ in self.schedule]
        i = max(0, bisect_right(starts, t) - 1)
        return self.schedule[i][2]

    def journal_lines(self) -> list[str]:
        """Deterministic one-line-per-window decision journal."""

        def names(sites: tuple[str, ...]) -> str:
            return ",".join(sites) if sites else "-"

        lines = [
            f"# repro-online {self.application} "
            f"budget={self.budget_real} strategy={self.config.strategy} "
            f"confirm={self.config.confirm_windows}"
        ]
        for d in self.decisions:
            moves = (
                " ".join(
                    f"{a.direction}={a.site}:{a.bytes_real}"
                    for a in d.actions
                )
                or "hold"
            )
            lines.append(
                f"window {d.index} [{d.t0:.6f},{d.t1:.6f}) "
                f"advised={names(d.advised)} applied={names(d.applied)} "
                f"{moves}"
            )
        lines.append(f"migrated_bytes={self.migrated_bytes_real}")
        return lines


def _window_profile(
    snapshot: AttributionResult,
    previous: AttributionResult | None,
    sampling_period: int,
    application: str,
) -> ProfileSet:
    """Profile of one window: miss/latency *deltas* over cumulative
    sizes (the advisor must still see every object that exists, at
    its true size, even if it went cold this window)."""
    if previous is None:
        return ProfileSet.from_attribution(
            snapshot, sampling_period=sampling_period, application=application
        )
    delta = AttributionResult(
        misses={
            key: count - previous.misses.get(key, 0)
            for key, count in snapshot.misses.items()
        },
        max_size=dict(snapshot.max_size),
        total_allocated=dict(snapshot.total_allocated),
        n_allocs=dict(snapshot.n_allocs),
        latency_sum={
            key: total - previous.latency_sum.get(key, 0)
            for key, total in snapshot.latency_sum.items()
        },
        unresolved_samples=snapshot.unresolved_samples
        - previous.unresolved_samples,
        stack_samples=snapshot.stack_samples - previous.stack_samples,
        total_samples=snapshot.total_samples - previous.total_samples,
    )
    return ProfileSet.from_attribution(
        delta, sampling_period=sampling_period, application=application
    )


def run_online(framework, budget_real: int, config: OnlineConfig | None = None):
    """Drive one full online session over ``framework``'s application.

    Returns the :class:`OnlineRun`. ``framework`` is a
    :class:`~repro.pipeline.framework.HybridMemoryFramework`; its
    cached profiling run provides the sample stream, so online and
    batch modes see bit-identical traces.
    """
    config = config or OnlineConfig()
    app = framework.app
    machine = framework.machine
    profiling = framework.profile()
    strategy = get_strategy(config.strategy)
    fast_tier = machine.fast_tier.name
    site_of = {
        identity: name for identity, name in app.key_to_site_name().items()
    }

    horizon = app.calibration.ddr_time
    span = (
        config.window_seconds
        if config.window_seconds is not None
        else horizon / config.n_windows
    )
    boundaries: list[tuple[float, float]] = []
    t = 0.0
    while t < horizon:
        boundaries.append((t, min(t + span, horizon)))
        t += span

    attributor = IncrementalAttributor(profiling.trace)
    advisor = HmemAdvisor(framework.memory_spec(budget_real))
    hysteresis = HysteresisFilter(config.confirm_windows)
    run = OnlineRun(
        application=app.name, budget_real=budget_real, config=config
    )

    previous_snapshot: AttributionResult | None = None
    active: frozenset[str] = frozenset()
    for index, (t0, t1) in enumerate(boundaries):
        run.schedule.append((t0, t1, active))
        if index == len(boundaries) - 1:
            attributor.advance_all()  # catch samples at exactly t=end
        else:
            attributor.advance_time(t1)
        snapshot = attributor.result()
        profiles = _window_profile(
            snapshot,
            previous_snapshot,
            framework.tracer_config.sampling_period,
            app.name,
        )
        previous_snapshot = snapshot

        report = advisor.advise(profiles, strategy)
        advised = frozenset(
            site_of[identity]
            for identity in report.selected_keys(fast_tier)
            if identity in site_of
        )
        applied = hysteresis.update(advised)
        promotions, demotions = diff_placements(active, applied)
        actions = tuple(
            MigrationAction(
                site=site,
                direction=direction,
                bytes_real=app.find_object(site).size,
                window=index,
            )
            for direction, sites in ((PROMOTE, promotions), (DEMOTE, demotions))
            for site in sites
        )
        run.migrated_bytes_real += sum(a.bytes_real for a in actions)
        run.decisions.append(
            WindowDecision(
                index=index,
                t0=t0,
                t1=t1,
                advised=tuple(sorted(advised)),
                applied=tuple(sorted(applied)),
                actions=actions,
            )
        )
        active = applied
    return run
