"""The online re-advising loop: window → attribute → advise → diff →
migrate — hardened to survive what real online guidance survives.

The batch pipeline runs profile → analyze → advise → re-run once.
The daemon modelled here instead watches the *same* sample stream
arrive in wall-clock windows, and at every window boundary:

1. advances a resumable :class:`IncrementalAttributor` cursor to the
   boundary and takes a cumulative snapshot;
2. forms the *window profile* — miss/latency deltas against the
   previous snapshot, with cumulative sizes (an object's size is a
   fact, not a rate);
3. re-solves placement with the ordinary :class:`HmemAdvisor` under
   the same budget and strategy the batch path would use;
4. debounces the advised set through a :class:`HysteresisFilter` and
   diffs it against the currently applied placement into promote and
   demote :class:`MigrationAction`s, which are *executed* one by one.

A decision made at the end of window *w* takes effect *during* window
``w+1`` — the daemon cannot retroactively accelerate traffic it has
already observed. Every migrated byte is accounted and later charged
to the run's memory time by the scoring layer.

Three failure classes are first-class citizens of the loop (the
robustness layer PRs 2 and 4 built for the batch path, at serving
scale):

* **Degraded sample windows.** A window's batch can be dropped,
  corrupted or late (:meth:`FaultInjector.window_fate`), and a
  decision can overrun its wall-clock budget
  (``OnlineConfig.decision_deadline_seconds``). All four take the same
  *freeze* path: the applied placement is held, the decision is
  journalled as ``WindowDecision(degraded=True, reason=...)``, and
  hysteresis streaks decay by one instead of folding garbage into the
  advisor. Late batches surface in the next window's delta; dropped
  and corrupt ones are excluded from every future delta.
* **Migration failures with rollback.** Each action is attempted
  individually; failures are classified through the
  :func:`repro.errors.classify_error` taxonomy. Transient failures
  retry with decorrelated jitter under a per-run retry budget;
  deterministic ones (and budget-exhausted transients) roll the site
  back to its prior tier — the applied placement, the hysteresis
  filter and the charged ``migrated_bytes`` stay consistent by
  construction. Repeated deterministic failures open a migration
  circuit breaker (the PR 4 :class:`CircuitBreaker`): further
  migrations freeze while advice continues.
* **Crashes.** With a checkpoint directory the daemon persists its
  full state after every window (:mod:`repro.online.checkpoint`);
  ``resume=True`` replays the checkpoint and finishes the remaining
  windows. The decision journal after a SIGKILL + resume is
  byte-identical to an uninterrupted run's.

The whole loop is deterministic given (trace, budget, config, fault
plan): every fault verdict is keyed on stable identities (window
index, site, direction, attempt), never on wall-clock time, so the
emitted decision journal is byte-stable across runs *and* across
kill/resume cycles — which is what the CI online-smoke and
online-chaos jobs assert.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.advisor.advisor import HmemAdvisor
from repro.advisor.strategies import get_strategy
from repro.analysis.attribution import AttributionResult
from repro.analysis.profile import ProfileSet
from repro.analysis.vectorattr import IncrementalAttributor
from repro.errors import (
    CATEGORY_TRANSIENT,
    CheckpointError,
    ConfigError,
    ReproError,
    classify_error,
)
from repro.faults.injector import (
    WINDOW_CORRUPT,
    WINDOW_DROP,
    WINDOW_LATE,
    WINDOW_OK,
    FaultInjector,
    _unit,
)
from repro.machine.performance import MIGRATION_BANDWIDTH_DEFAULT
from repro.online.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    load_checkpoint,
    save_checkpoint,
    session_key,
)
from repro.online.migration import (
    DEMOTE,
    PROMOTE,
    HysteresisFilter,
    MigrationAction,
    MigrationFailure,
    diff_placements,
)
from repro.parallel.supervisor import CircuitBreaker

#: Default window count (referenced by the mutual-exclusion check:
#: setting ``window_seconds`` together with a *non-default*
#: ``n_windows`` is a configuration contradiction, not a preference).
N_WINDOWS_DEFAULT = 16

#: Degraded-window reasons, as they appear in decision journals.
REASON_OF_FATE = {
    WINDOW_DROP: "window-drop",
    WINDOW_CORRUPT: "window-corrupt",
    WINDOW_LATE: "window-late",
}
REASON_DEADLINE = "deadline"
REASON_CIRCUIT = "circuit-open"


@dataclass(frozen=True, slots=True)
class OnlineConfig:
    """Knobs of the re-advising daemon."""

    #: Decision interval in simulated seconds; None derives it from
    #: ``n_windows`` over the run's calibrated wall time.
    window_seconds: float | None = None
    #: Number of equal windows when ``window_seconds`` is None.
    n_windows: int = N_WINDOWS_DEFAULT
    #: Selection strategy name (same registry as the batch advisor).
    strategy: str = "misses-0%"
    #: Consecutive windows a site must win/lose its placement before
    #: the migration is issued (1 = act immediately).
    confirm_windows: int = 1
    #: Sustained tier-to-tier migration bandwidth, bytes/second.
    migration_bandwidth: float = MIGRATION_BANDWIDTH_DEFAULT
    #: Wall-clock budget for one window's attribute→advise decision;
    #: an overrun freezes the window exactly like a degraded sample
    #: batch (None: no watchdog).
    decision_deadline_seconds: float | None = None
    #: Retries granted to one migration action's *transient* failures
    #: (deterministic failures never retry — they roll back).
    migration_retries: int = 2
    #: Base of the decorrelated-jitter delay between migration retries
    #: (0: retry immediately; keeps tests and simulations fast).
    migration_backoff_seconds: float = 0.0
    #: Per-run budget of migration retry attempts; once spent, further
    #: transient failures fail fast and roll back.
    migration_error_budget: int = 16
    #: Deterministic migration failures before the migration circuit
    #: opens — further migrations freeze, advice continues (None:
    #: breaker disabled).
    migration_circuit_threshold: int | None = 4
    #: Wall-clock pause before each window's decision work. Models the
    #: real-time arrival of the sample stream; the chaos tests use it
    #: to stretch the run so a SIGKILL lands mid-session. Never
    #: affects the decision journal.
    window_pause_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.window_seconds is not None and self.window_seconds <= 0:
            raise ConfigError("window_seconds must be positive")
        if self.n_windows < 1:
            raise ConfigError("need at least one window")
        if (
            self.window_seconds is not None
            and self.n_windows != N_WINDOWS_DEFAULT
        ):
            raise ConfigError(
                "window_seconds and n_windows both set: they are two "
                "ways to cut the same run — pick one "
                f"(got window_seconds={self.window_seconds}, "
                f"n_windows={self.n_windows})"
            )
        if self.confirm_windows < 1:
            raise ConfigError("confirm_windows must be >= 1")
        if self.migration_bandwidth <= 0:
            raise ConfigError("migration bandwidth must be positive")
        if (
            self.decision_deadline_seconds is not None
            and self.decision_deadline_seconds <= 0
        ):
            raise ConfigError("decision deadline must be positive")
        if self.migration_retries < 0:
            raise ConfigError("migration_retries must be >= 0")
        if self.migration_backoff_seconds < 0:
            raise ConfigError("migration_backoff_seconds must be >= 0")
        if self.migration_error_budget < 0:
            raise ConfigError("migration_error_budget must be >= 0")
        if (
            self.migration_circuit_threshold is not None
            and self.migration_circuit_threshold < 1
        ):
            raise ConfigError("migration_circuit_threshold must be >= 1")
        if self.window_pause_seconds < 0:
            raise ConfigError("window_pause_seconds must be >= 0")


@dataclass(frozen=True, slots=True)
class WindowDecision:
    """What the daemon decided at the end of one window."""

    index: int
    t0: float
    t1: float
    #: Sites the advisor selected from this window's profile.
    advised: tuple[str, ...]
    #: Sites actually placed fast after hysteresis *and* after any
    #: migration failures rolled back.
    applied: tuple[str, ...]
    #: Migrations that actually completed this window.
    actions: tuple[MigrationAction, ...]
    #: True when the window produced no usable decision input (lost
    #: or corrupt sample batch, blown decision deadline): the applied
    #: placement was frozen and ``reason`` says why.
    degraded: bool = False
    #: Freeze reason ("window-drop", "window-corrupt", "window-late",
    #: "deadline", "circuit-open"); None on a healthy window.
    reason: str | None = None
    #: Migrations that finally failed and were rolled back.
    failed: tuple[MigrationFailure, ...] = ()


@dataclass
class OnlineRun:
    """Full record of one online session (decisions + placement
    schedule), ready for scoring and journaling."""

    application: str
    budget_real: int
    config: OnlineConfig
    decisions: list[WindowDecision] = field(default_factory=list)
    #: ``(t0, t1, sites-fast-during-this-window)`` — the placement in
    #: force while each window executed (decision lag included).
    schedule: list[tuple[float, float, frozenset[str]]] = field(
        default_factory=list
    )
    migrated_bytes_real: int = 0
    #: Migrations that finally failed and were rolled back.
    migration_failures: int = 0
    #: Transient retry attempts consumed from the error budget.
    migration_retries_used: int = 0
    #: True once the migration circuit breaker opened.
    circuit_open: bool = False

    @property
    def actions(self) -> list[MigrationAction]:
        return [a for d in self.decisions for a in d.actions]

    @property
    def failures(self) -> list[MigrationFailure]:
        return [f for d in self.decisions for f in d.failed]

    @property
    def degraded_windows(self) -> int:
        return sum(1 for d in self.decisions if d.degraded)

    def active_sites(self, t: float) -> frozenset[str]:
        """Sites placed fast at simulated instant ``t``."""
        if not self.schedule:
            return frozenset()
        starts = [t0 for t0, _, _ in self.schedule]
        i = max(0, bisect_right(starts, t) - 1)
        return self.schedule[i][2]

    def journal_lines(self) -> list[str]:
        """Deterministic one-line-per-window decision journal."""

        def names(sites: tuple[str, ...]) -> str:
            return ",".join(sites) if sites else "-"

        lines = [
            f"# repro-online {self.application} "
            f"budget={self.budget_real} strategy={self.config.strategy} "
            f"confirm={self.config.confirm_windows}"
        ]
        for d in self.decisions:
            moves = (
                " ".join(
                    f"{a.direction}={a.site}:{a.bytes_real}"
                    for a in d.actions
                )
                or "hold"
            )
            line = (
                f"window {d.index} [{d.t0:.6f},{d.t1:.6f}) "
                f"advised={names(d.advised)} applied={names(d.applied)} "
                f"{moves}"
            )
            if d.degraded:
                line += f" degraded={d.reason}"
            elif d.reason is not None:
                line += f" frozen={d.reason}"
            for failure in d.failed:
                line += (
                    f" failed={failure.direction}:{failure.site}:"
                    f"{failure.category}@{failure.attempts}"
                )
            lines.append(line)
        lines.append(f"migrated_bytes={self.migrated_bytes_real}")
        lines.append(
            f"migration_failures={self.migration_failures} "
            f"retries={self.migration_retries_used} "
            f"circuit={'open' if self.circuit_open else 'closed'} "
            f"degraded_windows={self.degraded_windows}"
        )
        return lines


def _window_profile(
    snapshot: AttributionResult,
    previous: AttributionResult | None,
    sampling_period: int,
    application: str,
) -> ProfileSet:
    """Profile of one window: miss/latency *deltas* over cumulative
    sizes (the advisor must still see every object that exists, at
    its true size, even if it went cold this window)."""
    if previous is None:
        return ProfileSet.from_attribution(
            snapshot, sampling_period=sampling_period, application=application
        )
    delta = AttributionResult(
        misses={
            key: count - previous.misses.get(key, 0)
            for key, count in snapshot.misses.items()
        },
        max_size=dict(snapshot.max_size),
        total_allocated=dict(snapshot.total_allocated),
        n_allocs=dict(snapshot.n_allocs),
        latency_sum={
            key: total - previous.latency_sum.get(key, 0)
            for key, total in snapshot.latency_sum.items()
        },
        unresolved_samples=snapshot.unresolved_samples
        - previous.unresolved_samples,
        stack_samples=snapshot.stack_samples - previous.stack_samples,
        total_samples=snapshot.total_samples - previous.total_samples,
    )
    return ProfileSet.from_attribution(
        delta, sampling_period=sampling_period, application=application
    )


# -- checkpoint (de)serialisation of decisions ------------------------------


def _action_to_dict(action: MigrationAction) -> dict:
    return {
        "site": action.site,
        "direction": action.direction,
        "bytes_real": action.bytes_real,
        "window": action.window,
    }


def _failure_to_dict(failure: MigrationFailure) -> dict:
    return {
        "site": failure.site,
        "direction": failure.direction,
        "window": failure.window,
        "attempts": failure.attempts,
        "category": failure.category,
    }


def _decision_to_dict(decision: WindowDecision) -> dict:
    return {
        "index": decision.index,
        "t0": decision.t0,
        "t1": decision.t1,
        "advised": list(decision.advised),
        "applied": list(decision.applied),
        "actions": [_action_to_dict(a) for a in decision.actions],
        "degraded": decision.degraded,
        "reason": decision.reason,
        "failed": [_failure_to_dict(f) for f in decision.failed],
    }


def _decision_from_dict(data: dict) -> WindowDecision:
    try:
        return WindowDecision(
            index=int(data["index"]),
            t0=float(data["t0"]),
            t1=float(data["t1"]),
            advised=tuple(str(s) for s in data["advised"]),
            applied=tuple(str(s) for s in data["applied"]),
            actions=tuple(
                MigrationAction(
                    site=str(a["site"]),
                    direction=str(a["direction"]),
                    bytes_real=int(a["bytes_real"]),
                    window=int(a["window"]),
                )
                for a in data["actions"]
            ),
            degraded=bool(data.get("degraded", False)),
            reason=data.get("reason"),
            failed=tuple(
                MigrationFailure(
                    site=str(f["site"]),
                    direction=str(f["direction"]),
                    window=int(f["window"]),
                    attempts=int(f["attempts"]),
                    category=str(f["category"]),
                )
                for f in data.get("failed", [])
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"malformed checkpointed decision: {exc}"
        ) from exc


class OnlineDaemon:
    """One online session: the hardened serving loop plus its state.

    ``framework`` is a
    :class:`~repro.pipeline.framework.HybridMemoryFramework`; its
    cached profiling run provides the sample stream (so online and
    batch modes see bit-identical traces) and its ``fault_plan`` — if
    it names streaming fault kinds — drives the degradation schedule.
    """

    def __init__(
        self,
        framework,
        budget_real: int,
        config: OnlineConfig | None = None,
        *,
        checkpoint_dir: str | Path | None = None,
        resume: bool = False,
        clock=time.monotonic,
    ) -> None:
        self.framework = framework
        self.budget_real = budget_real
        self.config = config or OnlineConfig()
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.resume = resume
        self._clock = clock
        plan = framework.fault_plan
        self._injector = (
            FaultInjector(plan)
            if plan is not None and plan.degrades_online
            else None
        )
        self._fault_seed = plan.seed if plan is not None else framework.seed

    # -- setup ----------------------------------------------------------

    def _boundaries(self, horizon: float) -> list[tuple[float, float]]:
        config = self.config
        span = (
            config.window_seconds
            if config.window_seconds is not None
            else horizon / config.n_windows
        )
        boundaries: list[tuple[float, float]] = []
        t = 0.0
        while t < horizon:
            boundaries.append((t, min(t + span, horizon)))
            t += span
        return boundaries

    # -- checkpointing ---------------------------------------------------

    def _checkpoint_payload(self, next_window: int, completed: bool) -> dict:
        run = self.run_record
        return {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "session": self._session,
            "application": run.application,
            "budget_real": run.budget_real,
            "seed": self.framework.seed,
            "config": asdict(self.config),
            "next_window": next_window,
            "completed": completed,
            "active": sorted(self.active),
            "hysteresis": self.hysteresis.to_state(),
            "attributor": self.attributor.to_state(),
            "prev_consumed": self._prev_consumed,
            "decisions": [_decision_to_dict(d) for d in run.decisions],
            "schedule": [
                [t0, t1, sorted(sites)] for t0, t1, sites in run.schedule
            ],
            "migrated_bytes_real": run.migrated_bytes_real,
            "migration_failures": run.migration_failures,
            "migration_retries_used": run.migration_retries_used,
            "retry_budget_left": self._retry_budget_left,
            "circuit_failures": self._breaker.failures.get(
                run.application, 0
            ),
            "circuit_open": run.circuit_open,
        }

    def _write_checkpoint(self, next_window: int, completed: bool) -> None:
        if self.checkpoint_dir is None:
            return
        save_checkpoint(
            self.checkpoint_dir,
            self._checkpoint_payload(next_window, completed),
        )

    def _restore(self, payload: dict, trace) -> int:
        """Rebuild session state from a checkpoint; returns the next
        window index to execute."""
        if payload.get("session") != self._session:
            raise CheckpointError(
                "checkpoint belongs to a different online session "
                f"(checkpoint {payload.get('session')!r}, this session "
                f"{self._session!r}); use a fresh --checkpoint-dir"
            )
        run = self.run_record
        try:
            run.decisions = [
                _decision_from_dict(d) for d in payload["decisions"]
            ]
            run.schedule = [
                (float(t0), float(t1), frozenset(str(s) for s in sites))
                for t0, t1, sites in payload["schedule"]
            ]
            run.migrated_bytes_real = int(payload["migrated_bytes_real"])
            run.migration_failures = int(payload["migration_failures"])
            run.migration_retries_used = int(
                payload["migration_retries_used"]
            )
            run.circuit_open = bool(payload["circuit_open"])
            self.active = frozenset(
                str(s) for s in payload["active"]
            )
            self._retry_budget_left = int(payload["retry_budget_left"])
            circuit_failures = int(payload["circuit_failures"])
            next_window = int(payload["next_window"])
            prev_consumed = payload["prev_consumed"]
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed checkpoint payload: {exc}"
            ) from exc
        try:
            self.hysteresis = HysteresisFilter.from_state(
                payload["hysteresis"]
            )
            self.attributor = IncrementalAttributor.from_state(
                trace, payload["attributor"]
            )
        except ReproError as exc:
            raise CheckpointError(
                f"checkpoint state does not restore: {exc}"
            ) from exc
        if circuit_failures:
            self._breaker.failures[run.application] = circuit_failures
        self._prev_consumed = prev_consumed
        self._previous_snapshot = None
        if prev_consumed is not None:
            # The previous window's snapshot is a pure function of the
            # cursor position it was taken at: replay a fresh cursor to
            # that position instead of serialising ObjectKey tables.
            replay = IncrementalAttributor(trace)
            replay.advance_events(int(prev_consumed))
            self._previous_snapshot = replay.result()
        return next_window

    # -- migration execution --------------------------------------------

    def _retry_delay(
        self, attempt_done: int, site: str, direction: str, window: int
    ) -> float:
        """Decorrelated-jitter delay before the next migration attempt
        (the PR 4 sweep backoff, keyed per action)."""
        base = self.config.migration_backoff_seconds
        if base <= 0:
            return 0.0
        cap = base * 32
        sleep = base
        for i in range(1, attempt_done + 1):
            u = _unit(
                self._fault_seed, "migration-backoff", site, direction,
                window, i,
            )
            sleep = min(cap, base + u * max(0.0, 3.0 * sleep - base))
        return sleep

    def _execute_migration(
        self, site: str, direction: str, window: int
    ) -> MigrationFailure | None:
        """Attempt one migration; None on success, the failure record
        (site rolled back by the caller) when it finally fails."""
        run = self.run_record
        application = run.application
        attempt = 0
        while True:
            attempt += 1
            try:
                if self._injector is not None:
                    self._injector.check_migration(
                        application, site, direction, window, attempt
                    )
                return None
            except ReproError as exc:
                category = classify_error(exc)
                if (
                    category == CATEGORY_TRANSIENT
                    and attempt <= self.config.migration_retries
                    and self._retry_budget_left > 0
                ):
                    self._retry_budget_left -= 1
                    run.migration_retries_used += 1
                    delay = self._retry_delay(
                        attempt, site, direction, window
                    )
                    if delay > 0:
                        time.sleep(delay)
                    continue
                return MigrationFailure(
                    site=site,
                    direction=direction,
                    window=window,
                    attempts=attempt,
                    category=category,
                )

    def _apply_placement(
        self, advised: frozenset[str], index: int
    ) -> tuple[
        frozenset[str],
        tuple[MigrationAction, ...],
        tuple[MigrationFailure, ...],
    ]:
        """Debounce, diff and *execute* one window's migrations.

        Returns ``(new_active, completed_actions, failures)``. A
        failed action leaves its site in the prior tier, resyncs the
        hysteresis filter (:meth:`HysteresisFilter.rollback`) and
        charges nothing — the applied placement and
        ``migrated_bytes_real`` cannot disagree.
        """
        run = self.run_record
        app = self.framework.app
        target = self.hysteresis.update(advised)
        promotions, demotions = diff_placements(self.active, target)
        completed: list[MigrationAction] = []
        failures: list[MigrationFailure] = []
        new_active = set(self.active)
        for direction, sites in ((PROMOTE, promotions), (DEMOTE, demotions)):
            for site in sites:
                failure = self._execute_migration(site, direction, index)
                if failure is None:
                    size = app.find_object(site).size
                    completed.append(
                        MigrationAction(
                            site=site,
                            direction=direction,
                            bytes_real=size,
                            window=index,
                        )
                    )
                    if direction == PROMOTE:
                        new_active.add(site)
                    else:
                        new_active.discard(site)
                    run.migrated_bytes_real += size
                else:
                    failures.append(failure)
                    run.migration_failures += 1
                    self.hysteresis.rollback(site)
                    self._breaker.record_failure(
                        run.application, failure.category
                    )
        if self._breaker.is_open(run.application):
            run.circuit_open = True
        return frozenset(new_active), tuple(completed), tuple(failures)

    # -- the loop --------------------------------------------------------

    def run(self) -> OnlineRun:
        framework = self.framework
        config = self.config
        app = framework.app
        machine = framework.machine
        profiling = framework.profile()
        strategy = get_strategy(config.strategy)
        fast_tier = machine.fast_tier.name
        site_of = dict(app.key_to_site_name())
        boundaries = self._boundaries(app.calibration.ddr_time)

        self.attributor = IncrementalAttributor(profiling.trace)
        self.hysteresis = HysteresisFilter(config.confirm_windows)
        self.active: frozenset[str] = frozenset()
        self.run_record = OnlineRun(
            application=app.name,
            budget_real=self.budget_real,
            config=config,
        )
        self._breaker = CircuitBreaker(config.migration_circuit_threshold)
        self._retry_budget_left = config.migration_error_budget
        self._previous_snapshot: AttributionResult | None = None
        self._prev_consumed: int | None = None
        # Wall-clock-only knobs (pauses, retry sleeps) never touch the
        # decision stream, so they must not pin session identity — a
        # run stretched for chaos testing resumes without them.
        config_identity = {
            key: value
            for key, value in asdict(config).items()
            if key not in ("window_pause_seconds",
                           "migration_backoff_seconds")
        }
        self._session = session_key(
            app.name,
            self.budget_real,
            framework.seed,
            config_identity,
            self.attributor.fingerprint(),
        )

        start_index = 0
        if self.checkpoint_dir is not None and self.resume:
            payload = load_checkpoint(self.checkpoint_dir)
            if payload is not None:
                start_index = self._restore(payload, profiling.trace)
                if payload.get("completed"):
                    return self.run_record

        advisor = HmemAdvisor(framework.memory_spec(self.budget_real))
        run = self.run_record
        last = len(boundaries) - 1
        for index in range(start_index, last + 1):
            t0, t1 = boundaries[index]
            run.schedule.append((t0, t1, self.active))
            if config.window_pause_seconds > 0:
                time.sleep(config.window_pause_seconds)
            started = self._clock()
            if index == last:
                self.attributor.advance_all()  # samples at exactly t=end
            else:
                self.attributor.advance_time(t1)
            snapshot = self.attributor.result()

            fate = (
                self._injector.window_fate(app.name, index)
                if self._injector is not None
                else WINDOW_OK
            )
            if fate != WINDOW_OK:
                # Unusable sample batch: freeze the placement, decay
                # streaks, journal the reason. Late samples stay
                # pending (the next delta spans both windows); dropped
                # and corrupt batches are excluded from every delta.
                if fate != WINDOW_LATE:
                    self._previous_snapshot = snapshot
                    self._prev_consumed = self.attributor.consumed_events
                decision = self._freeze(
                    index, t0, t1, REASON_OF_FATE[fate]
                )
            else:
                profiles = _window_profile(
                    snapshot,
                    self._previous_snapshot,
                    framework.tracer_config.sampling_period,
                    app.name,
                )
                report = advisor.advise(profiles, strategy)
                advised = frozenset(
                    site_of[identity]
                    for identity in report.selected_keys(fast_tier)
                    if identity in site_of
                )
                self._previous_snapshot = snapshot
                self._prev_consumed = self.attributor.consumed_events
                elapsed = self._clock() - started
                if (
                    config.decision_deadline_seconds is not None
                    and elapsed > config.decision_deadline_seconds
                ):
                    # Watchdog: the decision took too long to still be
                    # actionable — treat it exactly like a lost window.
                    decision = self._freeze(
                        index, t0, t1, REASON_DEADLINE
                    )
                elif self._breaker.is_open(app.name):
                    # Migration circuit open: advice continues (and is
                    # journalled), movement does not.
                    decision = WindowDecision(
                        index=index,
                        t0=t0,
                        t1=t1,
                        advised=tuple(sorted(advised)),
                        applied=tuple(sorted(self.active)),
                        actions=(),
                        reason=REASON_CIRCUIT,
                    )
                else:
                    new_active, actions, failures = self._apply_placement(
                        advised, index
                    )
                    decision = WindowDecision(
                        index=index,
                        t0=t0,
                        t1=t1,
                        advised=tuple(sorted(advised)),
                        applied=tuple(sorted(new_active)),
                        actions=actions,
                        failed=failures,
                    )
                    self.active = new_active
            run.decisions.append(decision)
            self._write_checkpoint(
                next_window=index + 1, completed=index == last
            )
        return run

    def _freeze(
        self, index: int, t0: float, t1: float, reason: str
    ) -> WindowDecision:
        """The degraded-window path: hold placement, age streaks."""
        self.hysteresis.decay()
        return WindowDecision(
            index=index,
            t0=t0,
            t1=t1,
            advised=(),
            applied=tuple(sorted(self.active)),
            actions=(),
            degraded=True,
            reason=reason,
        )


def run_online(
    framework,
    budget_real: int,
    config: OnlineConfig | None = None,
    *,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
) -> OnlineRun:
    """Drive one full online session over ``framework``'s application.

    Returns the :class:`OnlineRun`. With ``checkpoint_dir`` the
    session state is persisted after every window; ``resume=True``
    replays an existing checkpoint (if any) and executes only the
    remaining windows — the decision journal is byte-identical either
    way.
    """
    return OnlineDaemon(
        framework,
        budget_real,
        config,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    ).run()
