"""Migration decisions: diffing placements and damping flapping.

The batch framework binds objects to a tier once, at allocation time.
The online daemon instead re-solves placement every window, so two
consecutive decisions can disagree — the difference is a set of
*migrations*: promotions copy an object's pages into the fast tier,
demotions evict them back. Each moved byte is charged to the run
through :class:`repro.machine.performance.PlacedTraffic` at the
page-migration bandwidth.

Because per-window profiles are sampled (and therefore noisy), a
naive diff would thrash objects whose ranking hovers near the budget
boundary. :class:`HysteresisFilter` requires a site to win (or lose)
its place for ``confirm_windows`` consecutive decisions before the
move is actually issued — the standard debounce both online-guidance
papers in PAPERS.md apply.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

PROMOTE = "promote"
DEMOTE = "demote"


@dataclass(frozen=True, slots=True)
class MigrationAction:
    """One tier-to-tier move of one site's data."""

    site: str
    direction: str
    #: Real (unscaled) bytes moved, per rank.
    bytes_real: int
    #: Index of the decision window that issued the move.
    window: int

    def __post_init__(self) -> None:
        if self.direction not in (PROMOTE, DEMOTE):
            raise ConfigError(f"unknown direction {self.direction!r}")
        if self.bytes_real < 0:
            raise ConfigError("negative migration size")


def diff_placements(
    current: frozenset[str], target: frozenset[str]
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """Sites to promote and demote to turn ``current`` into ``target``
    (each sorted for deterministic journals)."""
    return (
        tuple(sorted(target - current)),
        tuple(sorted(current - target)),
    )


class HysteresisFilter:
    """Debounce placement flapping with a per-site streak counter.

    A site is *applied* (actually migrated fast) only after appearing
    in the advised set for ``confirm_windows`` consecutive decisions,
    and evicted only after being absent for as many. ``1`` means "act
    immediately".
    """

    def __init__(self, confirm_windows: int = 1) -> None:
        if confirm_windows < 1:
            raise ConfigError(
                f"confirm_windows must be >= 1, got {confirm_windows}"
            )
        self.confirm_windows = confirm_windows
        self._applied: frozenset[str] = frozenset()
        self._streaks: dict[str, int] = {}

    @property
    def applied(self) -> frozenset[str]:
        return self._applied

    def update(self, advised: frozenset[str]) -> frozenset[str]:
        """Fold one window's advised set in; return the applied set."""
        streaks: dict[str, int] = {}
        for site in advised | self._applied:
            wants_flip = (site in advised) != (site in self._applied)
            if wants_flip:
                streaks[site] = self._streaks.get(site, 0) + 1
            # A site matching its applied state resets its streak.
        flipped = {
            site
            for site, streak in streaks.items()
            if streak >= self.confirm_windows
        }
        for site in flipped:
            streaks.pop(site)
        self._streaks = streaks
        self._applied = frozenset(self._applied ^ flipped)
        return self._applied
