"""Migration decisions: diffing placements and damping flapping.

The batch framework binds objects to a tier once, at allocation time.
The online daemon instead re-solves placement every window, so two
consecutive decisions can disagree — the difference is a set of
*migrations*: promotions copy an object's pages into the fast tier,
demotions evict them back. Each moved byte is charged to the run
through :class:`repro.machine.performance.PlacedTraffic` at the
page-migration bandwidth.

Because per-window profiles are sampled (and therefore noisy), a
naive diff would thrash objects whose ranking hovers near the budget
boundary. :class:`HysteresisFilter` requires a site to win (or lose)
its place for ``confirm_windows`` consecutive decisions before the
move is actually issued — the standard debounce both online-guidance
papers in PAPERS.md apply.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

PROMOTE = "promote"
DEMOTE = "demote"


@dataclass(frozen=True, slots=True)
class MigrationAction:
    """One tier-to-tier move of one site's data."""

    site: str
    direction: str
    #: Real (unscaled) bytes moved, per rank.
    bytes_real: int
    #: Index of the decision window that issued the move.
    window: int

    def __post_init__(self) -> None:
        if self.direction not in (PROMOTE, DEMOTE):
            raise ConfigError(f"unknown direction {self.direction!r}")
        if self.bytes_real < 0:
            raise ConfigError("negative migration size")


@dataclass(frozen=True, slots=True)
class MigrationFailure:
    """One migration that finally failed (after any retries) and was
    rolled back: the site stays in its prior tier and none of its
    bytes are charged, so the applied placement and the accounted
    ``migrated_bytes`` can never disagree."""

    site: str
    direction: str
    #: Index of the decision window that issued the failing move.
    window: int
    #: Attempts consumed (1 = failed outright, no retry granted).
    attempts: int
    #: Failure-taxonomy bucket of the final error
    #: (:func:`repro.errors.classify_error`).
    category: str

    def __post_init__(self) -> None:
        if self.direction not in (PROMOTE, DEMOTE):
            raise ConfigError(f"unknown direction {self.direction!r}")
        if self.attempts < 1:
            raise ConfigError("a failure consumes at least one attempt")


def diff_placements(
    current: frozenset[str], target: frozenset[str]
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """Sites to promote and demote to turn ``current`` into ``target``
    (each sorted for deterministic journals)."""
    return (
        tuple(sorted(target - current)),
        tuple(sorted(current - target)),
    )


class HysteresisFilter:
    """Debounce placement flapping with a per-site streak counter.

    A site is *applied* (actually migrated fast) only after appearing
    in the advised set for ``confirm_windows`` consecutive decisions,
    and evicted only after being absent for as many. ``1`` means "act
    immediately".
    """

    def __init__(self, confirm_windows: int = 1) -> None:
        if confirm_windows < 1:
            raise ConfigError(
                f"confirm_windows must be >= 1, got {confirm_windows}"
            )
        self.confirm_windows = confirm_windows
        self._applied: frozenset[str] = frozenset()
        self._streaks: dict[str, int] = {}

    @property
    def applied(self) -> frozenset[str]:
        return self._applied

    def update(self, advised: frozenset[str]) -> frozenset[str]:
        """Fold one window's advised set in; return the applied set."""
        streaks: dict[str, int] = {}
        for site in advised | self._applied:
            wants_flip = (site in advised) != (site in self._applied)
            if wants_flip:
                streaks[site] = self._streaks.get(site, 0) + 1
            # A site matching its applied state resets its streak.
        flipped = {
            site
            for site, streak in streaks.items()
            if streak >= self.confirm_windows
        }
        for site in flipped:
            streaks.pop(site)
        self._streaks = streaks
        self._applied = frozenset(self._applied ^ flipped)
        return self._applied

    def decay(self) -> None:
        """Age every streak by one window without folding new advice.

        The daemon calls this on a *degraded* window (dropped, corrupt
        or late sample batch, or a blown decision deadline): the
        window produced no usable evidence, so confirmation streaks
        built before the gap must not survive it at full strength —
        a site flapping across an outage would otherwise migrate on
        stale evidence the moment the stream recovers.
        """
        self._streaks = {
            site: streak - 1
            for site, streak in self._streaks.items()
            if streak > 1
        }

    def rollback(self, site: str) -> None:
        """Undo one site's most recent flip after its migration failed.

        The filter flipped ``site`` into (or out of) its applied set,
        but the migration itself was rolled back — resync the filter
        to physical reality and clear the site's streak so it must
        re-earn the move from scratch.
        """
        self._applied = frozenset(self._applied ^ {site})
        self._streaks.pop(site, None)

    # -- checkpoint/restore --------------------------------------------

    def to_state(self) -> dict:
        """JSON-serialisable snapshot (checkpointed every window)."""
        return {
            "confirm_windows": self.confirm_windows,
            "applied": sorted(self._applied),
            "streaks": dict(sorted(self._streaks.items())),
        }

    @classmethod
    def from_state(cls, state: dict) -> "HysteresisFilter":
        try:
            instance = cls(int(state["confirm_windows"]))
            instance._applied = frozenset(
                str(s) for s in state.get("applied", [])
            )
            instance._streaks = {
                str(site): int(streak)
                for site, streak in dict(state.get("streaks", {})).items()
            }
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(
                f"malformed hysteresis state: {exc}"
            ) from exc
        return instance
