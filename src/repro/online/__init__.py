"""Online re-advising: windowed attribution, migration, scoring."""

from repro.online.daemon import (
    OnlineConfig,
    OnlineRun,
    WindowDecision,
    run_online,
)
from repro.online.migration import (
    DEMOTE,
    PROMOTE,
    HysteresisFilter,
    MigrationAction,
    diff_placements,
)
from repro.online.scoring import (
    OnlineOutcome,
    evaluate_one_shot,
    evaluate_online,
    run_windowed,
    windowed_cost,
)

__all__ = [
    "DEMOTE",
    "PROMOTE",
    "HysteresisFilter",
    "MigrationAction",
    "OnlineConfig",
    "OnlineOutcome",
    "OnlineRun",
    "WindowDecision",
    "diff_placements",
    "evaluate_one_shot",
    "evaluate_online",
    "run_online",
    "run_windowed",
    "windowed_cost",
]
