"""Online re-advising: windowed attribution, migration, scoring —
hardened with checkpoint/restore, degraded windows and migration
rollback."""

from repro.online.checkpoint import (
    CHECKPOINT_FILENAME,
    checkpoint_path,
    load_checkpoint,
    save_checkpoint,
    session_key,
)
from repro.online.daemon import (
    OnlineConfig,
    OnlineDaemon,
    OnlineRun,
    WindowDecision,
    run_online,
)
from repro.online.migration import (
    DEMOTE,
    PROMOTE,
    HysteresisFilter,
    MigrationAction,
    MigrationFailure,
    diff_placements,
)
from repro.online.scoring import (
    OnlineOutcome,
    evaluate_one_shot,
    evaluate_online,
    run_windowed,
    windowed_cost,
)

__all__ = [
    "CHECKPOINT_FILENAME",
    "DEMOTE",
    "PROMOTE",
    "HysteresisFilter",
    "MigrationAction",
    "MigrationFailure",
    "OnlineConfig",
    "OnlineDaemon",
    "OnlineOutcome",
    "OnlineRun",
    "WindowDecision",
    "checkpoint_path",
    "diff_placements",
    "evaluate_one_shot",
    "evaluate_online",
    "load_checkpoint",
    "run_online",
    "run_windowed",
    "save_checkpoint",
    "session_key",
    "windowed_cost",
]
