"""Score a windowed placement schedule against the full ground truth.

The execution model charges bytes to the tier that served them. The
batch scorer (``compute_traffic``) splits the run's total traffic by
*whole-run* miss shares; a time-varying placement needs the split per
window instead: the run's calibrated traffic is distributed over the
timeline's :class:`~repro.apps.base.WindowTruth` records in
proportion to each window's true miss count, and within a window a
site's bytes are fast exactly when the schedule had it placed fast
*while that window executed*. Migration traffic rides on top through
``PlacedTraffic.migrated_bytes``.

One-shot placements are evaluated through the *same* windowed
evaluator (a constant schedule), so the online-vs-batch FOM
comparison differs only in what each mode decided — never in how it
is scored.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.machine.performance import ExecutionModel, PlacedTraffic, RunCost
from repro.online.daemon import OnlineConfig, OnlineRun, run_online
from repro.placement.policies import _total_traffic_bytes


def windowed_cost(
    app,
    machine,
    profiling,
    schedule: list[tuple[float, float, frozenset[str]]],
    migrated_bytes_real: int = 0,
    migration_bandwidth: float = 0.0,
    cold_start: bool = False,
) -> RunCost:
    """Score a ``(t0, t1, fast-sites)`` schedule on the true miss
    timeline. Stack and static traffic stays on the slow tier — the
    migration mechanism (like auto-hbwmalloc) only reaches heap
    objects.

    A truth window whose midpoint falls *before* the first schedule
    entry is not covered by any decision. With ``cold_start=True`` the
    schedule is treated as starting at t=0 with nothing placed fast
    (everything slow until the first entry takes effect — the physical
    cold start of a daemon attached mid-run); without the opt-in an
    uncovered window is a :class:`ConfigError` naming the window, not
    a silent all-slow score.
    """
    truth = profiling.ground_truth
    if not truth.windows:
        raise ConfigError("profiling run carries no per-window truth")
    for window in truth.windows:
        if window.t1 <= window.t0:
            raise ConfigError(
                "zero-length truth window "
                f"[{window.t0},{window.t1}): its midpoint cannot place "
                "it on the schedule and its misses would be misattributed"
            )
    total = _total_traffic_bytes(app, machine)
    cal = app.calibration

    lookup = sorted(schedule)
    # The cluster layer scores thousands of schedules: one bisect per
    # truth window over the pre-extracted start times replaces the
    # O(windows x schedule) rescanning linear lookup.
    starts = [t0 for t0, _, _ in lookup]
    fast = 0.0
    if truth.total_misses > 0:
        for window in truth.windows:
            misses = window.total_misses
            if misses == 0:
                continue
            midpoint = (window.t0 + window.t1) / 2.0
            i = bisect_right(starts, midpoint) - 1
            if i < 0:
                if not cold_start:
                    raise ConfigError(
                        f"truth window [{window.t0},{window.t1}) lies "
                        "before the first schedule entry "
                        f"(t0={starts[0] if starts else None}); pass "
                        "cold_start=True to score it as an explicit "
                        "all-slow cold start"
                    )
                active: frozenset[str] = frozenset()
            else:
                active = lookup[i][2]
            fast_misses = sum(
                count
                for site, count in window.misses_by_site.items()
                if site in active
            )
            fast += (
                total
                * (misses / truth.total_misses)
                * (fast_misses / misses)
            )

    traffic = PlacedTraffic(
        by_tier={
            machine.fast_tier.name: fast,
            machine.slow_tier.name: total - fast,
        },
        migrated_bytes=float(migrated_bytes_real),
        migration_bandwidth=migration_bandwidth,
    )
    model = ExecutionModel(machine)
    return model.cost(
        traffic, compute_time=cal.compute_time, work=cal.work
    )


def evaluate_online(framework, run: OnlineRun) -> RunCost:
    """Score an online session, migration cost included."""
    return windowed_cost(
        framework.app,
        framework.machine,
        framework.profile(),
        run.schedule,
        migrated_bytes_real=run.migrated_bytes_real,
        migration_bandwidth=run.config.migration_bandwidth,
    )


def evaluate_one_shot(
    framework, budget_real: int, strategy: str = "misses-0%"
) -> RunCost:
    """Score the batch profile-once-advise-once placement through the
    same windowed evaluator (constant schedule, no migrations —
    one-shot binding happens at allocation time)."""
    sites = framework.placement_sites(budget_real, strategy)
    horizon = framework.app.calibration.ddr_time
    return windowed_cost(
        framework.app,
        framework.machine,
        framework.profile(),
        [(0.0, horizon, sites)],
    )


@dataclass(frozen=True, slots=True)
class OnlineOutcome:
    """One budget's online-vs-one-shot comparison."""

    run: OnlineRun
    online_cost: RunCost
    one_shot_cost: RunCost

    @property
    def online_fom(self) -> float:
        return self.online_cost.fom

    @property
    def one_shot_fom(self) -> float:
        return self.one_shot_cost.fom

    @property
    def improvement(self) -> float:
        """Relative FOM gain of re-advising online (can be negative)."""
        return self.online_fom / self.one_shot_fom - 1.0


def run_windowed(
    framework,
    budget_real: int,
    config: OnlineConfig | None = None,
    *,
    checkpoint_dir=None,
    resume: bool = False,
) -> OnlineOutcome:
    """Full online session plus the matched one-shot baseline."""
    config = config or OnlineConfig()
    run = run_online(
        framework,
        budget_real,
        config,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    return OnlineOutcome(
        run=run,
        online_cost=evaluate_online(framework, run),
        one_shot_cost=evaluate_one_shot(
            framework, budget_real, config.strategy
        ),
    )
