"""Crash-safe checkpointing of the online daemon's session state.

The sweep executor's journal (PR 4, :mod:`repro.parallel.journal`)
makes *batch* progress durable; this module does the same for the
*serving loop*: after every decision window the daemon serialises its
whole state — the :class:`~repro.analysis.vectorattr.IncrementalAttributor`
cursor and tallies, the :class:`~repro.online.migration.HysteresisFilter`
streaks, the applied placement, the decisions and schedule so far, and
the migration failure counters — into one checkpoint file. A SIGKILL
at any instant loses at most the window in flight: ``repro-online
--resume`` replays the checkpoint and finishes the remaining windows,
and the decision journal it finally emits is byte-identical to the one
an uninterrupted run writes (CI's ``online-chaos`` job kills a live
session and asserts exactly that).

Durability discipline is the journal's, reused wholesale:

* the record codec is the journal's CRC-checksummed canonical JSON
  (:func:`repro.parallel.journal.encode_record`), so a bit-rotted
  checkpoint is *detected* — :class:`~repro.errors.CheckpointError`,
  a poisoned-input in the failure taxonomy — rather than trusted;
* the file is written through :func:`repro.ioutil.atomic_write_text`
  (write a temp sibling, fsync, rename, fsync the directory), so a
  crash mid-checkpoint leaves the *previous* window's checkpoint
  intact — there is never a torn tail to truncate because there is
  never a torn file;
* the payload pins the session identity (application, budget, seed,
  full config, trace fingerprint); resuming against a checkpoint from
  a different session refuses instead of mixing state, exactly like
  the journal's foreign-sweep refusal.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.errors import CheckpointError
from repro.ioutil import atomic_write_text
from repro.parallel.journal import decode_record, encode_record

#: Bump when the checkpoint payload layout changes incompatibly.
CHECKPOINT_SCHEMA_VERSION = 1

#: File name of the checkpoint inside its directory.
CHECKPOINT_FILENAME = "online.checkpoint"

#: Record type tag (shares the journal's line codec).
RECORD_CHECKPOINT = "online-checkpoint"


def session_key(
    application: str,
    budget_real: int,
    seed: int,
    config: dict,
    trace_fingerprint: str,
) -> str:
    """Content hash pinning one online session's identity.

    Any difference in application, budget, seed, configuration or the
    profiled trace itself yields a different key, so a checkpoint can
    only ever resume the exact session that wrote it.
    """
    canonical = json.dumps(
        {
            "application": application,
            "budget_real": budget_real,
            "seed": seed,
            "config": config,
            "trace": trace_fingerprint,
            "schema": CHECKPOINT_SCHEMA_VERSION,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:32]


def checkpoint_path(
    directory: str | Path, filename: str = CHECKPOINT_FILENAME
) -> Path:
    return Path(directory) / filename


def save_checkpoint(
    directory: str | Path,
    payload: dict,
    filename: str = CHECKPOINT_FILENAME,
    record_type: str = RECORD_CHECKPOINT,
) -> Path:
    """Atomically persist one checkpoint payload, fsynced end to end.

    The defaults write the online daemon's checkpoint; other
    subsystems (the cluster simulator) reuse the same durability
    discipline by naming their own ``filename``/``record_type``.
    """
    directory = Path(directory)
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except (FileExistsError, NotADirectoryError) as exc:
        raise CheckpointError(
            f"checkpoint dir {directory} is not a directory"
        ) from exc
    path = checkpoint_path(directory, filename)
    atomic_write_text(path, encode_record(record_type, payload) + "\n")
    return path


def load_checkpoint(
    directory: str | Path,
    filename: str = CHECKPOINT_FILENAME,
    record_type: str = RECORD_CHECKPOINT,
    label: str = "an online checkpoint",
) -> dict | None:
    """Read a checkpoint back; ``None`` when none exists yet.

    A present-but-unreadable checkpoint (damaged JSON, CRC mismatch,
    wrong record type) raises :class:`~repro.errors.CheckpointError`:
    the atomic writer never leaves a torn file, so damage means the
    checkpoint cannot be trusted at all, not that its tail is stale.
    """
    path = checkpoint_path(directory, filename)
    try:
        raw = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return None
    except OSError as exc:
        raise CheckpointError(
            f"cannot read checkpoint {path}: {exc}"
        ) from exc
    decoded = decode_record(raw.strip())
    if decoded is None:
        raise CheckpointError(
            f"{path}: damaged checkpoint (bad JSON or checksum mismatch)"
        )
    found_type, payload = decoded
    if found_type != record_type:
        raise CheckpointError(
            f"{path}: not {label} (record type {found_type!r})"
        )
    if payload.get("schema") != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"{path}: unsupported checkpoint schema "
            f"{payload.get('schema')!r} (expected "
            f"{CHECKPOINT_SCHEMA_VERSION})"
        )
    return payload
